// Package lgraph provides the local labeled-graph view that the path index
// structures (PPO, HOPI, APEX, ...) are built on.
//
// A meta document (FliX §4.1) is a subset of a collection's documents plus a
// subset of its link edges.  Before an index is built, the meta document is
// flattened into an LGraph: nodes are renumbered densely 0..N-1, element
// names are dictionary-compressed into tag IDs, and the edges are stored in
// compressed sparse row (CSR) form.  Keeping the index packages on this
// minimal representation decouples them from the XML data model and makes
// them reusable for any directed labeled graph.
package lgraph

import (
	"fmt"
	"sort"
)

// Tag is a dictionary-compressed element name.  It is an alias (not a
// defined type) so the index packages' probe methods, which take tags,
// satisfy the storage-agnostic probe interface (storage.Probe) that is
// expressed in plain int32 — internal/storage sits below this package and
// cannot import it.
type Tag = int32

// NoTag is returned for unknown element names.
const NoTag Tag = -1

// LGraph is an immutable directed graph with dense node IDs 0..N-1 and a tag
// per node.  Construct with NewBuilder; zero value is an empty graph.
type LGraph struct {
	n int

	// CSR adjacency: successors of u are adjTargets[adjOff[u]:adjOff[u+1]].
	adjOff     []int32
	adjTargets []int32

	// Reverse CSR adjacency (predecessors), built eagerly by Finish.
	radjOff     []int32
	radjTargets []int32

	tags     []Tag
	tagNames []string
	tagIDs   map[string]Tag
}

// Builder accumulates nodes and edges for an LGraph.
type Builder struct {
	tags     []Tag
	tagNames []string
	tagIDs   map[string]Tag
	from, to []int32
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{tagIDs: make(map[string]Tag)}
}

// AddNode appends a node with the given element name and returns its dense
// ID.
func (b *Builder) AddNode(tag string) int32 {
	id, ok := b.tagIDs[tag]
	if !ok {
		id = Tag(len(b.tagNames))
		b.tagNames = append(b.tagNames, tag)
		b.tagIDs[tag] = id
	}
	b.tags = append(b.tags, id)
	return int32(len(b.tags) - 1)
}

// AddEdge appends a directed edge u -> v.  Both endpoints must already have
// been added.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= len(b.tags) || v < 0 || int(v) >= len(b.tags) {
		panic(fmt.Sprintf("lgraph: AddEdge(%d, %d) out of range (%d nodes)", u, v, len(b.tags)))
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.tags) }

// Finish builds the immutable graph.  Parallel edges are kept (they are
// harmless for reachability and distance).
func (b *Builder) Finish() *LGraph {
	g := &LGraph{
		n:        len(b.tags),
		tags:     b.tags,
		tagNames: b.tagNames,
		tagIDs:   b.tagIDs,
	}
	g.adjOff, g.adjTargets = buildCSR(g.n, b.from, b.to)
	g.radjOff, g.radjTargets = buildCSR(g.n, b.to, b.from)
	return g
}

func buildCSR(n int, from, to []int32) (off, targets []int32) {
	off = make([]int32, n+1)
	for _, u := range from {
		off[u+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	targets = make([]int32, len(from))
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for i, u := range from {
		targets[cursor[u]] = to[i]
		cursor[u]++
	}
	// Sort each adjacency run for deterministic iteration order.
	for u := 0; u < n; u++ {
		run := targets[off[u]:off[u+1]]
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
	}
	return off, targets
}

// NumNodes returns the number of nodes.
func (g *LGraph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *LGraph) NumEdges() int { return len(g.adjTargets) }

// Tag returns the tag of node u.
func (g *LGraph) Tag(u int32) Tag { return g.tags[u] }

// TagName returns the element name of tag t.
func (g *LGraph) TagName(t Tag) string { return g.tagNames[t] }

// TagOf returns the tag ID for an element name, or NoTag.
func (g *LGraph) TagOf(name string) Tag {
	if id, ok := g.tagIDs[name]; ok {
		return id
	}
	return NoTag
}

// NumTags returns the number of distinct element names.
func (g *LGraph) NumTags() int { return len(g.tagNames) }

// Succs returns the successors of u.  Callers must not mutate the slice.
func (g *LGraph) Succs(u int32) []int32 {
	return g.adjTargets[g.adjOff[u]:g.adjOff[u+1]]
}

// Preds returns the predecessors of u.  Callers must not mutate the slice.
func (g *LGraph) Preds(u int32) []int32 {
	return g.radjTargets[g.radjOff[u]:g.radjOff[u+1]]
}

// OutDegree returns the number of edges leaving u.
func (g *LGraph) OutDegree(u int32) int { return int(g.adjOff[u+1] - g.adjOff[u]) }

// InDegree returns the number of edges entering u.
func (g *LGraph) InDegree(u int32) int { return int(g.radjOff[u+1] - g.radjOff[u]) }

// Roots returns the nodes without predecessors, ascending.
func (g *LGraph) Roots() []int32 {
	var out []int32
	for u := int32(0); u < int32(g.n); u++ {
		if g.InDegree(u) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// IsForest reports whether the graph is a forest: every node has at most one
// predecessor and there are no cycles.  PPO requires this.
func (g *LGraph) IsForest() bool {
	for u := int32(0); u < int32(g.n); u++ {
		if g.InDegree(u) > 1 {
			return false
		}
	}
	// In-degree <= 1 everywhere means any cycle would be a simple rho-free
	// cycle with no entry point, i.e. a set of nodes all with in-degree 1
	// unreachable from a root.  Count nodes reachable from roots; if all
	// nodes are covered, there is no cycle.
	seen := make([]bool, g.n)
	var stack []int32
	for _, r := range g.Roots() {
		stack = append(stack, r)
		seen[r] = true
	}
	covered := len(stack)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if !seen[v] {
				seen[v] = true
				covered++
				stack = append(stack, v)
			}
		}
	}
	return covered == g.n
}

// HasCycle reports whether the graph contains a directed cycle, via Kahn's
// algorithm.
func (g *LGraph) HasCycle() bool {
	indeg := make([]int32, g.n)
	for u := int32(0); u < int32(g.n); u++ {
		for _, v := range g.Succs(u) {
			indeg[v]++
		}
	}
	var queue []int32
	for u := int32(0); u < int32(g.n); u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, v := range g.Succs(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return removed != g.n
}

// BFSDistances returns the shortest-path distance from start to every node
// (-1 where unreachable).  Forward edges when !reverse, predecessor edges
// otherwise.  This is the exact oracle used in tests and by the transitive
// closure.
func (g *LGraph) BFSDistances(start int32, reverse bool) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := make([]int32, 0, 16)
	queue = append(queue, start)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		next := g.Succs(u)
		if reverse {
			next = g.Preds(u)
		}
		for _, v := range next {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TagHistogram returns, for each tag, the number of nodes carrying it.
func (g *LGraph) TagHistogram() []int {
	h := make([]int, len(g.tagNames))
	for _, t := range g.tags {
		h[t]++
	}
	return h
}
