package lgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildDiamond(t testing.TB) *LGraph {
	t.Helper()
	b := NewBuilder()
	// 0:a -> 1:b, 0 -> 2:c, 1 -> 3:b, 2 -> 3
	for _, tag := range []string{"a", "b", "c", "b"} {
		b.AddNode(tag)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	return b.Finish()
}

func TestBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(g.Succs(0), []int32{1, 2}) {
		t.Errorf("Succs(0) = %v", g.Succs(0))
	}
	if !reflect.DeepEqual(g.Preds(3), []int32{1, 2}) {
		t.Errorf("Preds(3) = %v", g.Preds(3))
	}
	if len(g.Succs(3)) != 0 {
		t.Errorf("Succs(3) = %v", g.Succs(3))
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.InDegree(0) != 0 {
		t.Error("degrees wrong")
	}
}

func TestTags(t *testing.T) {
	g := buildDiamond(t)
	if g.NumTags() != 3 {
		t.Fatalf("NumTags = %d", g.NumTags())
	}
	if g.TagName(g.Tag(3)) != "b" {
		t.Errorf("Tag(3) = %q", g.TagName(g.Tag(3)))
	}
	if g.TagOf("c") != g.Tag(2) {
		t.Error("TagOf(c) mismatch")
	}
	if g.TagOf("zzz") != NoTag {
		t.Error("unknown tag should be NoTag")
	}
	if !reflect.DeepEqual(g.TagHistogram(), []int{1, 2, 1}) {
		t.Errorf("TagHistogram = %v", g.TagHistogram())
	}
}

func TestRootsForestCycle(t *testing.T) {
	g := buildDiamond(t)
	if !reflect.DeepEqual(g.Roots(), []int32{0}) {
		t.Errorf("Roots = %v", g.Roots())
	}
	if g.IsForest() {
		t.Error("diamond is not a forest")
	}
	if g.HasCycle() {
		t.Error("diamond has no cycle")
	}

	b := NewBuilder()
	b.AddNode("a")
	b.AddNode("b")
	b.AddEdge(0, 1)
	tree := b.Finish()
	if !tree.IsForest() || tree.HasCycle() {
		t.Error("simple tree misclassified")
	}

	b2 := NewBuilder()
	b2.AddNode("a")
	b2.AddNode("b")
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 0)
	cyc := b2.Finish()
	if cyc.IsForest() {
		t.Error("cycle classified as forest")
	}
	if !cyc.HasCycle() {
		t.Error("cycle not detected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := buildDiamond(t)
	d := g.BFSDistances(0, false)
	if !reflect.DeepEqual(d, []int32{0, 1, 1, 2}) {
		t.Errorf("forward BFS = %v", d)
	}
	r := g.BFSDistances(3, true)
	if !reflect.DeepEqual(r, []int32{2, 1, 1, 0}) {
		t.Errorf("reverse BFS = %v", r)
	}
}

func TestAddEdgePanics(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range must panic")
		}
	}()
	b.AddEdge(0, 5)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().Finish()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph wrong")
	}
	if !g.IsForest() || g.HasCycle() {
		t.Error("empty graph classification wrong")
	}
	if len(g.Roots()) != 0 {
		t.Error("empty graph has roots")
	}
}

func TestPropertyForwardReverseBFSAgree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode("t")
		}
		for e := rng.Intn(3 * n); e > 0; e-- {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Finish()
		x := int32(rng.Intn(n))
		y := int32(rng.Intn(n))
		// dist(x->y) forward from x equals dist(x->y) reverse from y.
		return g.BFSDistances(x, false)[y] == g.BFSDistances(y, true)[x]
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
