package apex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

// buildGraph: a small DAG with two structurally different "b" nodes:
//
//	0:a ─> 1:b ─> 3:c
//	0:a ─> 2:d ─> 4:b    (b under d: different incoming path than 1)
//	4:b ─> 5:c
func buildGraph(t testing.TB) (*lgraph.LGraph, *Index) {
	t.Helper()
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "d", "c", "b", "c"} {
		b.AddNode(tag)
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	return g, Build(g)
}

func TestPartitionSeparatesByIncomingPath(t *testing.T) {
	_, idx := buildGraph(t)
	// Node 1 (b under a) and node 4 (b under d) must be in different
	// classes; node 3 (c under a/b) and 5 (c under a/d/b) likewise.
	if idx.Class(1) == idx.Class(4) {
		t.Error("b-under-a and b-under-d merged")
	}
	if idx.Class(3) == idx.Class(5) {
		t.Error("c-under-b and c-under-d/b merged")
	}
}

func TestExtents(t *testing.T) {
	_, idx := buildGraph(t)
	for v := int32(0); v < 6; v++ {
		found := false
		for _, m := range idx.Extent(idx.Class(v)) {
			if m == v {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d missing from its extent", v)
		}
	}
}

func TestPathExtent(t *testing.T) {
	_, idx := buildGraph(t)
	if got := idx.PathExtent([]string{"a", "b", "c"}); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("PathExtent(a/b/c) = %v, want [3]", got)
	}
	if got := idx.PathExtent([]string{"b", "c"}); !reflect.DeepEqual(got, []int32{3, 5}) {
		t.Errorf("PathExtent(b/c) = %v, want [3 5]", got)
	}
	if got := idx.PathExtent([]string{"b"}); !reflect.DeepEqual(got, []int32{1, 4}) {
		t.Errorf("PathExtent(b) = %v, want [1 4]", got)
	}
	if got := idx.PathExtent([]string{"a", "c"}); got != nil {
		t.Errorf("PathExtent(a/c) = %v, want nil", got)
	}
	if got := idx.PathExtent([]string{"zzz"}); got != nil {
		t.Errorf("PathExtent(zzz) = %v, want nil", got)
	}
	if got := idx.PathExtent(nil); got != nil {
		t.Errorf("PathExtent(nil) = %v", got)
	}
}

func TestReachableDistance(t *testing.T) {
	_, idx := buildGraph(t)
	if !idx.Reachable(0, 5) {
		t.Error("0 must reach 5")
	}
	if idx.Reachable(1, 4) {
		t.Error("1 must not reach 4")
	}
	if d, ok := idx.Distance(0, 5); !ok || d != 3 {
		t.Errorf("Distance(0,5) = %d,%t", d, ok)
	}
	if d, ok := idx.Distance(2, 2); !ok || d != 0 {
		t.Errorf("Distance(2,2) = %d,%t", d, ok)
	}
	if _, ok := idx.Distance(3, 0); ok {
		t.Error("Distance(3,0) should fail")
	}
}

func TestEachReachableByTag(t *testing.T) {
	g, idx := buildGraph(t)
	var nodes, dists []int32
	idx.EachReachableByTag(0, g.TagOf("c"), func(n, d int32) bool {
		nodes = append(nodes, n)
		dists = append(dists, d)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{3, 5}) || !reflect.DeepEqual(dists, []int32{2, 3}) {
		t.Errorf("c-descendants of 0 = %v %v", nodes, dists)
	}
}

func TestEachReachableWildcard(t *testing.T) {
	_, idx := buildGraph(t)
	var nodes []int32
	idx.EachReachable(0, func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{0, 1, 2, 3, 4, 5}) {
		t.Errorf("EachReachable(0) = %v", nodes)
	}
}

func TestEachReaching(t *testing.T) {
	g, idx := buildGraph(t)
	var nodes []int32
	idx.EachReachingByTag(5, g.TagOf("a"), func(n, d int32) bool {
		nodes = append(nodes, n)
		return true
	})
	if !reflect.DeepEqual(nodes, []int32{0}) {
		t.Errorf("a-ancestors of 5 = %v", nodes)
	}
}

func TestWriteTo(t *testing.T) {
	_, idx := buildGraph(t)
	n, err := storage.SizeOf(idx)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("size = %d", n)
	}
}

func randomGraph(rng *rand.Rand, n, edges int) *lgraph.LGraph {
	b := lgraph.NewBuilder()
	tags := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		b.AddNode(tags[rng.Intn(len(tags))])
	}
	for e := 0; e < edges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Finish()
}

func TestPropertyAgainstBFS(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(2*n))
		idx := Build(g)
		x := int32(rng.Intn(n))
		dist := g.BFSDistances(x, false)
		for y := int32(0); y < int32(n); y++ {
			d, ok := idx.Distance(x, y)
			if ok != (dist[y] >= 0) {
				return false
			}
			if ok && d != dist[y] {
				return false
			}
		}
		// Tag enumeration equals oracle.
		tag := g.Tag(int32(rng.Intn(n)))
		want := make(map[int32]int32)
		for y := int32(0); y < int32(n); y++ {
			if dist[y] >= 0 && g.Tag(y) == tag {
				want[y] = dist[y]
			}
		}
		got := make(map[int32]int32)
		last := int32(-1)
		ordered := true
		idx.EachReachableByTag(x, tag, func(u, d int32) bool {
			if d < last {
				ordered = false
			}
			last = d
			got[u] = d
			return true
		})
		if !ordered || len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyPathExtentAgainstOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(2*n))
		idx := Build(g)
		tags := []string{"a", "b", "c", "d"}
		path := []string{tags[rng.Intn(4)], tags[rng.Intn(4)]}
		// Oracle: nodes v with tag path[1] having a predecessor tagged
		// path[0].
		want := make(map[int32]bool)
		for v := int32(0); v < int32(n); v++ {
			if g.TagName(g.Tag(v)) != path[1] {
				continue
			}
			for _, p := range g.Preds(v) {
				if g.TagName(g.Tag(p)) == path[0] {
					want[v] = true
					break
				}
			}
		}
		got := idx.PathExtent(path)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestBuildKCoarsens(t *testing.T) {
	// A chain a -> b -> c -> b -> c: full bisimulation separates the two
	// b (and c) occurrences; A(1) merges nodes with equal (tag,
	// predecessor-tag) signatures.
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "c", "b", "c"} {
		b.AddNode(tag)
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Finish()
	full := Build(g)
	a1 := BuildK(g, 1)
	if a1.NumClasses() > full.NumClasses() {
		t.Errorf("A(1) has %d classes, full has %d", a1.NumClasses(), full.NumClasses())
	}
	// Full: b-under-a (node 1) differs from b-under-c (node 3).
	if full.Class(1) == full.Class(3) {
		t.Error("full bisimulation merged structurally different b nodes")
	}
	// A(1): node 1 (pred tag a) still differs from node 3 (pred tag c),
	// but the two c nodes (both preceded by b) merge.
	if a1.Class(2) != a1.Class(4) {
		t.Error("A(1) separated c nodes with identical 1-step history")
	}
	if full.Class(2) == full.Class(4) {
		t.Error("full bisimulation merged c nodes with different 2-step history")
	}
}

func TestPropertyBuildKStillExact(t *testing.T) {
	// Element-anchored queries must stay exact at any k: the summary only
	// prunes, the traversal decides.
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(2*n))
		idx := BuildK(g, 1+rng.Intn(2))
		x := int32(rng.Intn(n))
		dist := g.BFSDistances(x, false)
		for y := int32(0); y < int32(n); y++ {
			d, ok := idx.Distance(x, y)
			if ok != (dist[y] >= 0) {
				return false
			}
			if ok && d != dist[y] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.get(0) || !b.get(64) || !b.get(129) || b.get(1) || b.get(128) {
		t.Error("bitset get/set wrong")
	}
	o := newBitset(130)
	o.set(5)
	if !o.union(b) {
		t.Error("union should change")
	}
	if !o.get(0) || !o.get(129) || !o.get(5) {
		t.Error("union result wrong")
	}
	if o.union(b) {
		t.Error("second union should not change")
	}
}
