package apex

// v2 snapshot section codec.  The v1 stream stores the class array and the
// summary edges and recomputes extents, predecessor lists and the tag
// reachability bitsets at load time (plus a full copy of the data
// adjacency as an integrity check).  The v2 section stores every structure
// the probes touch — including both bitset families as raw u64 words — so
// OpenSection only lays zero-copy views and subslice headers over the
// snapshot bytes; the summary is never re-derived.
//
//	u32 n, numClasses, numTags, words, totalSucc, totalPred
//	class    []int32 n
//	classTag []int32 numClasses
//	extentOff []u32 numClasses+1            extentData []int32 n
//	succOff   []u32 numClasses+1            succData   []int32 totalSucc
//	predOff   []u32 numClasses+1            predData   []int32 totalPred
//	reachTags   []u64 numClasses×words
//	reachedTags []u64 numClasses×words

import (
	"fmt"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// SectionKind implements storage.SectionEncoder.
func (idx *Index) SectionKind() uint32 { return storage.SectionAPEX }

// EncodeSection implements storage.SectionEncoder.
func (idx *Index) EncodeSection(sw *storage.SnapshotWriter) {
	n := len(idx.class)
	numClasses := len(idx.extents)
	numTags := idx.g.NumTags()
	words := (numTags + 63) / 64
	totalSucc, totalPred := 0, 0
	for c := 0; c < numClasses; c++ {
		totalSucc += len(idx.classSucc[c])
		totalPred += len(idx.classPred[c])
	}
	sw.U32(uint32(n))
	sw.U32(uint32(numClasses))
	sw.U32(uint32(numTags))
	sw.U32(uint32(words))
	sw.U32(uint32(totalSucc))
	sw.U32(uint32(totalPred))
	sw.I32s(idx.class)
	sw.I32s(idx.classTag)
	writeNested := func(rows [][]int32) {
		offs := make([]uint32, len(rows)+1)
		for i, r := range rows {
			offs[i+1] = offs[i] + uint32(len(r))
		}
		sw.U32s(offs)
		for _, r := range rows {
			sw.I32s(r)
		}
	}
	writeNested(idx.extents)
	writeNested(idx.classSucc)
	writeNested(idx.classPred)
	sw.Align(8)
	for _, bs := range idx.reachTags {
		sw.U64s(bs)
	}
	for _, bs := range idx.reachedTags {
		sw.U64s(bs)
	}
}

// OpenSection reconstructs an Index aliasing the section bytes.  The only
// allocations are the per-class slice headers; class values and summary
// edges are range-checked in one scan so probes cannot index out of
// bounds.
func OpenSection(g *lgraph.LGraph, data []byte) (pathindex.Index, error) {
	d := storage.NewSectionData(data)
	n := int(d.U32())
	numClasses := int(d.U32())
	numTags := int(d.U32())
	words := int(d.U32())
	totalSucc := int(d.U32())
	totalPred := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != g.NumNodes() || numTags != g.NumTags() {
		return nil, fmt.Errorf("apex: section has %d nodes/%d tags, graph %d/%d",
			n, numTags, g.NumNodes(), g.NumTags())
	}
	if numClasses > n || words != (numTags+63)/64 {
		return nil, fmt.Errorf("apex: %d classes / %d bitset words invalid for %d nodes, %d tags",
			numClasses, words, n, numTags)
	}
	maxEdges := numClasses * numClasses
	if totalSucc > maxEdges || totalPred > maxEdges {
		return nil, fmt.Errorf("apex: summary edge counts %d/%d exceed %d²", totalSucc, totalPred, numClasses)
	}
	idx := &Index{
		g:        g,
		class:    d.I32s(n),
		classTag: d.I32s(numClasses),
	}
	readNested := func(total int) [][]int32 {
		offs := d.PrefixOffsets(numClasses, uint32(total))
		flat := d.I32s(total)
		if d.Err() != nil {
			return nil
		}
		rows := make([][]int32, numClasses)
		for i := range rows {
			rows[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
		}
		return rows
	}
	idx.extents = readNested(n)
	idx.classSucc = readNested(totalSucc)
	idx.classPred = readNested(totalPred)
	d.Align(8)
	reachWords := d.U64s(numClasses * words)
	reachedWords := d.U64s(numClasses * words)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for _, c := range idx.class {
		if c < 0 || int(c) >= numClasses {
			return nil, fmt.Errorf("apex: class %d out of range", c)
		}
	}
	for c := 0; c < numClasses; c++ {
		for _, v := range idx.extents[c] {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("apex: extent node %d out of range", v)
			}
		}
		for _, s := range idx.classSucc[c] {
			if s < 0 || int(s) >= numClasses {
				return nil, fmt.Errorf("apex: summary edge to class %d out of range", s)
			}
		}
		for _, p := range idx.classPred[c] {
			if p < 0 || int(p) >= numClasses {
				return nil, fmt.Errorf("apex: summary edge from class %d out of range", p)
			}
		}
	}
	idx.reachTags = make([]bitset, numClasses)
	idx.reachedTags = make([]bitset, numClasses)
	for c := 0; c < numClasses; c++ {
		idx.reachTags[c] = bitset(reachWords[c*words : (c+1)*words : (c+1)*words])
		idx.reachedTags[c] = bitset(reachedWords[c*words : (c+1)*words : (c+1)*words])
	}
	return idx, nil
}
