package apex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lgraph"
	"repro/internal/storage"
)

func TestReadBodyRoundTrip(t *testing.T) {
	g, idx := buildGraph(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := storage.NewReader(&buf)
	if err := r.Header("apex"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBody(g, r)
	if err != nil {
		t.Fatal(err)
	}
	loaded := got.(*Index)
	if loaded.NumClasses() != idx.NumClasses() {
		t.Fatalf("classes: %d vs %d", loaded.NumClasses(), idx.NumClasses())
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if loaded.Class(v) != idx.Class(v) {
			t.Fatalf("Class(%d) differs", v)
		}
	}
	for _, path := range [][]string{{"a", "b", "c"}, {"b", "c"}, {"b"}} {
		a := idx.PathExtent(path)
		b := loaded.PathExtent(path)
		if len(a) != len(b) {
			t.Fatalf("PathExtent(%v): %v vs %v", path, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("PathExtent(%v): %v vs %v", path, a, b)
			}
		}
	}
}

func TestReadBodyWrongGraph(t *testing.T) {
	_, idx := buildGraph(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := lgraph.NewBuilder()
	b.AddNode("a")
	small := b.Finish()
	r := storage.NewReader(&buf)
	if err := r.Header("apex"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(small, r); err == nil {
		t.Error("ReadBody accepted a mismatched graph")
	}
}

func TestReadBodyAdjacencyMismatch(t *testing.T) {
	g, idx := buildGraph(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Same node count and tags, different edges.
	b := lgraph.NewBuilder()
	for _, tag := range []string{"a", "b", "d", "c", "b", "c"} {
		b.AddNode(tag)
	}
	b.AddEdge(0, 5) // edge structure differs from buildGraph's
	other := b.Finish()
	_ = g
	r := storage.NewReader(&buf)
	if err := r.Header("apex"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBody(other, r); err == nil {
		t.Error("ReadBody accepted a graph with different edges")
	}
}

func TestPropertyPersistRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(2*n))
		idx := Build(g)
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			return false
		}
		r := storage.NewReader(&buf)
		if err := r.Header("apex"); err != nil {
			return false
		}
		got, err := ReadBody(g, r)
		if err != nil {
			return false
		}
		loaded := got.(*Index)
		x := int32(rng.Intn(n))
		tag := g.Tag(int32(rng.Intn(n)))
		var a, b [][2]int32
		idx.EachReachableByTag(x, tag, func(u, d int32) bool { a = append(a, [2]int32{u, d}); return true })
		loaded.EachReachableByTag(x, tag, func(u, d int32) bool { b = append(b, [2]int32{u, d}); return true })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
