// Package apex implements an APEX-style adaptive path index (Chung et al.,
// SIGMOD 2002) in its base form APEX-0, i.e. without the workload-driven
// refinement for frequent queries — matching the comparator used in the FliX
// experiments ("a database-backed implementation of APEX without
// optimizations for frequent queries", §6).
//
// The index consists of a structural summary — the quotient of the data
// graph under backward bisimulation (nodes are equivalent when they carry
// the same tag and are reached by the same label paths) — together with the
// extent of every summary class and the data-graph adjacency.  Label-path
// queries (//a/b/c) are answered exactly on the summary alone.  Queries
// anchored at a single element (the descendants-or-self workload FliX cares
// about) fall back to a summary-pruned traversal of the data edges: the
// summary tells which classes can still reach the wanted tag, so whole
// branches are skipped, but the per-element work remains proportional to the
// traversed subgraph.  This is precisely why APEX "is not explicitly
// optimized for the descendants-or-self axis" (§2.2) — the behaviour the
// experiments reproduce.
package apex

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"repro/internal/lgraph"
	"repro/internal/pathindex"
	"repro/internal/storage"
)

// Index is an APEX-0 structural summary index.
type Index struct {
	g *lgraph.LGraph

	// class[v] is the summary class of data node v.
	class []int32
	// extents[c] lists the data nodes of class c, ascending.
	extents [][]int32
	// classTag[c] is the common tag of class c.
	classTag []lgraph.Tag
	// classSucc[c] lists the successor classes of c in the summary graph.
	classSucc [][]int32
	classPred [][]int32
	// reachTags[c] is a bitset over tags: which tags are reachable from
	// class c (including c's own tag).  reachedTags is the reverse.
	reachTags, reachedTags []bitset

	// bfs pools bfsScratch values so steady-state traversal probes
	// allocate nothing.
	bfs sync.Pool
}

// bfsScratch is the reusable state of one levelBFS: the visited table is
// stamped with a per-use tick (clearing it between probes is bumping the
// tick), and the two level slices retain their capacity.
type bfsScratch struct {
	seen        []int64
	tick        int64
	level, next []int32
}

var _ pathindex.Index = (*Index)(nil)

// Strategy is the registry entry for APEX (full refinement).
var Strategy = pathindex.Strategy{
	Name:  "apex",
	Build: func(g *lgraph.LGraph) (pathindex.Index, error) { return Build(g), nil },
}

// StrategyK returns a registry entry for the A(k) variant, named "a<k>".
func StrategyK(k int) pathindex.Strategy {
	return pathindex.Strategy{
		Name:  fmt.Sprintf("a%d", k),
		Build: func(g *lgraph.LGraph) (pathindex.Index, error) { return BuildK(g, k), nil },
	}
}

// Build constructs the full index (refinement to the fixpoint, i.e. the
// 1-index / complete backward bisimulation).
func Build(g *lgraph.LGraph) *Index {
	return BuildK(g, 0)
}

// BuildK constructs the A(k)-index variant (Kaushik et al.'s Index
// Definition Scheme, §2.2 of the FliX paper): the bisimulation refinement
// stops after k rounds, so two elements share a class iff their incoming
// label paths agree up to length k.  k <= 0 refines to the fixpoint.
//
// A truncated summary is coarser: extents merge structurally different
// elements and PathExtent answers are exact only for paths up to length k.
// The element-anchored queries stay exact regardless — the summary is a
// simulation of the data graph at any k, so its pruning sets are safe
// supersets and the data-edge traversal confirms every answer.
func BuildK(g *lgraph.LGraph, k int) *Index {
	idx := &Index{g: g}
	idx.partition(k)
	idx.buildSummary()
	idx.buildTagReach()
	return idx
}

// partition computes the backward-bisimulation classes by iterated signature
// refinement: start with one class per tag (round 0), then split classes
// until two nodes share a class iff they have the same tag and the same set
// of predecessor classes.  maxRounds > 0 truncates the refinement (the A(k)
// index); otherwise it runs to the fixpoint.
func (idx *Index) partition(maxRounds int) {
	g := idx.g
	n := g.NumNodes()
	class := make([]int32, n)
	for v := 0; v < n; v++ {
		class[v] = int32(g.Tag(int32(v)))
	}
	numClasses := g.NumTags()
	type sig struct {
		tag   lgraph.Tag
		preds string // sorted predecessor classes, varint-packed
	}
	buf := make([]byte, 0, 64)
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		next := make(map[sig]int32)
		newClass := make([]int32, n)
		for v := 0; v < n; v++ {
			preds := g.Preds(int32(v))
			cs := make([]int32, 0, len(preds))
			for _, p := range preds {
				cs = append(cs, class[p])
			}
			sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
			buf = buf[:0]
			prev := int32(-1)
			for _, c := range cs {
				if c == prev {
					continue // predecessor class sets, not multisets
				}
				prev = c
				buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			s := sig{tag: g.Tag(int32(v)), preds: string(buf)}
			id, ok := next[s]
			if !ok {
				id = int32(len(next))
				next[s] = id
			}
			newClass[v] = id
		}
		if len(next) == numClasses {
			class = newClass
			break
		}
		numClasses = len(next)
		class = newClass
	}
	idx.class = class
	idx.extents = make([][]int32, numClasses)
	idx.classTag = make([]lgraph.Tag, numClasses)
	for v := 0; v < n; v++ {
		c := class[v]
		idx.extents[c] = append(idx.extents[c], int32(v))
		idx.classTag[c] = g.Tag(int32(v))
	}
}

// buildSummary derives the summary graph edges from the data edges.
func (idx *Index) buildSummary() {
	g := idx.g
	numClasses := len(idx.extents)
	succSets := make([]map[int32]struct{}, numClasses)
	predSets := make([]map[int32]struct{}, numClasses)
	for i := range succSets {
		succSets[i] = make(map[int32]struct{})
		predSets[i] = make(map[int32]struct{})
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		cu := idx.class[u]
		for _, v := range g.Succs(u) {
			cv := idx.class[v]
			succSets[cu][cv] = struct{}{}
			predSets[cv][cu] = struct{}{}
		}
	}
	idx.classSucc = make([][]int32, numClasses)
	idx.classPred = make([][]int32, numClasses)
	for c := 0; c < numClasses; c++ {
		idx.classSucc[c] = setToSorted(succSets[c])
		idx.classPred[c] = setToSorted(predSets[c])
	}
}

func setToSorted(s map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildTagReach computes, per class, the set of tags reachable in the
// summary graph (forward and backward), by fixpoint propagation — the
// summary can be cyclic.
func (idx *Index) buildTagReach() {
	numClasses := len(idx.extents)
	numTags := idx.g.NumTags()
	idx.reachTags = make([]bitset, numClasses)
	idx.reachedTags = make([]bitset, numClasses)
	for c := 0; c < numClasses; c++ {
		idx.reachTags[c] = newBitset(numTags)
		idx.reachTags[c].set(int(idx.classTag[c]))
		idx.reachedTags[c] = newBitset(numTags)
		idx.reachedTags[c].set(int(idx.classTag[c]))
	}
	propagate(idx.reachTags, idx.classPred)
	propagate(idx.reachedTags, idx.classSucc)
}

// propagate unions each class's bits into its "upstream" neighbours until a
// fixpoint is reached, using a worklist.
func propagate(bits []bitset, upstream [][]int32) {
	work := make([]int32, 0, len(bits))
	inWork := make([]bool, len(bits))
	for c := range bits {
		work = append(work, int32(c))
		inWork[c] = true
	}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[c] = false
		for _, up := range upstream[c] {
			if bits[up].union(bits[c]) && !inWork[up] {
				work = append(work, up)
				inWork[up] = true
			}
		}
	}
}

// Name implements pathindex.Index.
func (idx *Index) Name() string { return "apex" }

// NumNodes implements pathindex.Index.
func (idx *Index) NumNodes() int { return idx.g.NumNodes() }

// NumClasses returns the number of summary classes.
func (idx *Index) NumClasses() int { return len(idx.extents) }

// Class returns the summary class of data node v.
func (idx *Index) Class(v int32) int32 { return idx.class[v] }

// Extent returns the data nodes of summary class c.
func (idx *Index) Extent(c int32) []int32 { return idx.extents[c] }

// Reachable implements pathindex.Index via summary-pruned BFS: a branch is
// abandoned as soon as its class can no longer reach y's tag; candidate hits
// are then confirmed by identity.
func (idx *Index) Reachable(x, y int32) bool {
	_, ok := idx.Distance(x, y)
	return ok
}

// Distance implements pathindex.Index.
func (idx *Index) Distance(x, y int32) (int32, bool) {
	if x == y {
		return 0, true
	}
	targetTag := idx.g.Tag(y)
	found := int32(-1)
	idx.prunedBFS(x, targetTag, func(n, d int32) bool {
		if n == y {
			found = d
			return false
		}
		return true
	})
	if found < 0 {
		return 0, false
	}
	return found, true
}

// prunedBFS runs a BFS over the data edges starting at x, visiting only
// nodes whose class can still reach wantTag in the summary, and reports
// every visited node carrying wantTag (excluding x itself).
func (idx *Index) prunedBFS(x int32, wantTag lgraph.Tag, fn pathindex.Visit) {
	g := idx.g
	if wantTag == lgraph.NoTag {
		return
	}
	dist := map[int32]int32{x: 0}
	queue := []int32{x}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		d := dist[u]
		for _, v := range g.Succs(u) {
			if _, seen := dist[v]; seen {
				continue
			}
			if !idx.reachTags[idx.class[v]].get(int(wantTag)) {
				continue // summary prunes this branch
			}
			dist[v] = d + 1
			if g.Tag(v) == wantTag {
				if !fn(v, d+1) {
					return
				}
			}
			queue = append(queue, v)
		}
	}
}

// EachReachable implements pathindex.Index with a plain BFS — the summary
// cannot prune a wildcard query.  BFS emits in ascending distance order with
// FIFO tie order; results within one level are re-sorted by node ID to meet
// the interface contract.
func (idx *Index) EachReachable(x int32, fn pathindex.Visit) {
	idx.levelBFS(x, false, lgraph.NoTag, true, fn)
}

// EachReachableByTag implements pathindex.Index.  Note that unlike
// EachReachable the summary pruning applies.
func (idx *Index) EachReachableByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	idx.levelBFS(x, false, tag, false, fn)
}

// EachReaching implements pathindex.Index.
func (idx *Index) EachReaching(x int32, fn pathindex.Visit) {
	idx.levelBFS(x, true, lgraph.NoTag, true, fn)
}

// EachReachingByTag implements pathindex.Index.
func (idx *Index) EachReachingByTag(x int32, tag lgraph.Tag, fn pathindex.Visit) {
	idx.levelBFS(x, true, tag, false, fn)
}

// levelBFS performs a level-synchronous BFS (forward or reverse), emitting
// nodes level by level sorted by ID.  With wildcard==false, only nodes of
// the given tag are emitted and the summary prunes dead branches.
func (idx *Index) levelBFS(x int32, reverse bool, tag lgraph.Tag, wildcard bool, fn pathindex.Visit) {
	if !wildcard && tag == lgraph.NoTag {
		return
	}
	g := idx.g
	reach := idx.reachTags
	if reverse {
		reach = idx.reachedTags
	}
	bs, _ := idx.bfs.Get().(*bfsScratch)
	if bs == nil {
		bs = &bfsScratch{seen: make([]int64, g.NumNodes())}
	}
	bs.tick++
	tick := bs.tick
	bs.seen[x] = tick
	level := append(bs.level[:0], x)
	next := bs.next[:0]
	d := int32(0)
	for len(level) > 0 {
		slices.Sort(level)
		for _, u := range level {
			if wildcard || g.Tag(u) == tag {
				if !fn(u, d) {
					bs.level, bs.next = level[:0], next[:0]
					idx.bfs.Put(bs)
					return
				}
			}
		}
		next = next[:0]
		for _, u := range level {
			adj := g.Succs(u)
			if reverse {
				adj = g.Preds(u)
			}
			for _, v := range adj {
				if bs.seen[v] == tick {
					continue
				}
				if !wildcard && !reach[idx.class[v]].get(int(tag)) {
					continue
				}
				bs.seen[v] = tick
				next = append(next, v)
			}
		}
		level, next = next, level
		d++
	}
	bs.level, bs.next = level[:0], next[:0]
	idx.bfs.Put(bs)
}

// PathExtent answers a pure label-path query //t1/t2/.../tk on the summary
// alone: it returns the data nodes reachable from any node tagged t1 through
// a child chain tagged t2...tk.  This is the query class APEX is built for;
// it never touches the data edges.
func (idx *Index) PathExtent(path []string) []int32 {
	if len(path) == 0 {
		return nil
	}
	t0 := idx.g.TagOf(path[0])
	if t0 == lgraph.NoTag {
		return nil
	}
	// current = summary classes matching the prefix so far.
	current := make(map[int32]struct{})
	for c := range idx.extents {
		if idx.classTag[c] == t0 {
			current[int32(c)] = struct{}{}
		}
	}
	for _, step := range path[1:] {
		t := idx.g.TagOf(step)
		if t == lgraph.NoTag {
			return nil
		}
		next := make(map[int32]struct{})
		for c := range current {
			for _, s := range idx.classSucc[c] {
				if idx.classTag[s] == t {
					next[s] = struct{}{}
				}
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	var out []int32
	for c := range current {
		out = append(out, idx.extents[c]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteTo serializes the summary: class membership, extents (implicitly, via
// the class array), summary edges, and the data-graph adjacency the
// traversal needs at query time (APEX keeps the edge relation in the
// database; it is part of the index size).
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	sw := storage.NewWriter(w)
	sw.Header("apex")
	sw.Uvarint(uint64(len(idx.class)))
	sw.Int32Slice(idx.class)
	sw.Uvarint(uint64(len(idx.extents)))
	for c := range idx.extents {
		sw.Int32(int32(idx.classTag[c]))
		sw.Int32Slice(idx.classSucc[c])
	}
	// Data adjacency.
	g := idx.g
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		sw.Int32Slice(g.Succs(u))
	}
	return sw.Flush()
}

// ReadBody deserializes an index written by WriteTo whose header has
// already been consumed.  The stored data adjacency is checked against g as
// an integrity test.
func ReadBody(g *lgraph.LGraph, r *storage.Reader) (pathindex.Index, error) {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n != g.NumNodes() {
		return nil, fmt.Errorf("apex: stream has %d nodes, graph %d", n, g.NumNodes())
	}
	idx := &Index{g: g, class: r.Int32Slice()}
	if len(idx.class) != n {
		return nil, fmt.Errorf("apex: truncated class array")
	}
	numClasses := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if numClasses > n {
		return nil, fmt.Errorf("apex: %d classes for %d nodes", numClasses, n)
	}
	idx.extents = make([][]int32, numClasses)
	idx.classTag = make([]lgraph.Tag, numClasses)
	idx.classSucc = make([][]int32, numClasses)
	idx.classPred = make([][]int32, numClasses)
	for c := 0; c < numClasses; c++ {
		idx.classTag[c] = lgraph.Tag(r.Int32())
		idx.classSucc[c] = r.Int32Slice()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	for v := 0; v < n; v++ {
		c := idx.class[v]
		if c < 0 || int(c) >= numClasses {
			return nil, fmt.Errorf("apex: node %d has class %d of %d", v, c, numClasses)
		}
		idx.extents[c] = append(idx.extents[c], int32(v))
	}
	predSets := make([]map[int32]struct{}, numClasses)
	for c := range predSets {
		predSets[c] = make(map[int32]struct{})
	}
	for c := 0; c < numClasses; c++ {
		for _, s := range idx.classSucc[c] {
			if s < 0 || int(s) >= numClasses {
				return nil, fmt.Errorf("apex: summary edge to unknown class %d", s)
			}
			predSets[s][int32(c)] = struct{}{}
		}
	}
	for c := 0; c < numClasses; c++ {
		idx.classPred[c] = setToSorted(predSets[c])
	}
	// Verify the stored adjacency matches the supplied graph.
	for u := int32(0); u < int32(n); u++ {
		stored := r.Int32Slice()
		succs := g.Succs(u)
		if len(stored) != len(succs) {
			return nil, fmt.Errorf("apex: node %d adjacency mismatch", u)
		}
		for i := range stored {
			if stored[i] != succs[i] {
				return nil, fmt.Errorf("apex: node %d adjacency mismatch", u)
			}
		}
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	idx.buildTagReach()
	return idx, nil
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// union ORs o into b and reports whether b changed.
func (b bitset) union(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}
