package testutil

import (
	"testing"

	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/xmlgraph"
)

// TestDeterministic verifies the generator's core contract: the same
// (family, seed) pair always produces the identical collection.
func TestDeterministic(t *testing.T) {
	for _, f := range Families() {
		for seed := int64(1); seed <= 3; seed++ {
			a := Generate(f, seed, 8, 40, 15)
			b := Generate(f, seed, 8, 40, 15)
			if a.NumNodes() != b.NumNodes() || a.NumDocs() != b.NumDocs() || a.NumLinks() != b.NumLinks() {
				t.Fatalf("%s seed %d: shapes differ: (%d,%d,%d) vs (%d,%d,%d)",
					f, seed, a.NumNodes(), a.NumDocs(), a.NumLinks(),
					b.NumNodes(), b.NumDocs(), b.NumLinks())
			}
			la, lb := a.Links(), b.Links()
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("%s seed %d: link %d differs: %+v vs %+v", f, seed, i, la[i], lb[i])
				}
			}
			for n := 0; n < a.NumNodes(); n++ {
				id := xmlgraph.NodeID(n)
				if a.Tag(id) != b.Tag(id) || a.Parent(id) != b.Parent(id) {
					t.Fatalf("%s seed %d: node %d differs", f, seed, n)
				}
			}
		}
	}
}

// TestFamilyShapes verifies the structural promise of each family on the
// whole-collection local graph.
func TestFamilyShapes(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := func(f Family) *meta.MetaDocument {
			c := Generate(f, seed, 8, 40, 15)
			s := meta.Build(c, partition.Whole(c))
			if err := s.Validate(); err != nil {
				t.Fatalf("%s seed %d: invalid meta set: %v", f, seed, err)
			}
			if len(s.Metas) != 1 {
				t.Fatalf("%s seed %d: Whole produced %d meta documents", f, seed, len(s.Metas))
			}
			return s.Metas[0]
		}
		if md := g(Trees); !md.Graph.IsForest() {
			t.Errorf("trees seed %d: data graph is not a forest", seed)
		}
		if md := g(DAGs); md.Graph.HasCycle() {
			t.Errorf("dags seed %d: data graph has a cycle", seed)
		} else if md.Graph.IsForest() {
			t.Logf("dags seed %d: degenerated to a forest (no shared targets)", seed)
		}
		// Linked collections merely have to be valid; cycles are allowed
		// and the builder must survive them.
		g(Linked)
	}
}
