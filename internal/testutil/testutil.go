// Package testutil generates seeded pseudo-random XML collections for the
// differential test suites that cross-check every Path Indexing Strategy
// against the transitive-closure oracle.  All generators are deterministic
// in their seed: a failing test logs the family and seed, and re-running
// with them reproduces the exact collection.
//
// Three families cover the structural range of the paper's data model:
//
//   - Trees: the overall data graph is a tree (documents linked
//     root-to-root), the MaximalPPO situation — every strategy including
//     PPO applies.
//   - DAGs: documents carrying id/idref-style links that always point
//     forward in document preorder, so the data graph is acyclic but no
//     longer a forest.
//   - Linked: arbitrary cross-document XLink-style references with no
//     direction constraint; cycles are possible and expected.
package testutil

import (
	"fmt"
	"math/rand"

	"repro/internal/xmlgraph"
)

// Family names one shape of random collection.
type Family string

const (
	// Trees generates collections whose data graph is a tree.
	Trees Family = "trees"
	// DAGs generates collections with forward-only id/idref links.
	DAGs Family = "dags"
	// Linked generates collections with unconstrained XLink-style links.
	Linked Family = "linked"
)

// Families lists every collection shape, in test order.
func Families() []Family { return []Family{Trees, DAGs, Linked} }

// Generate builds one frozen collection of the family, deterministic in
// seed: docs documents of 1..maxSize elements each; links link edges for
// the DAGs and Linked families (Trees derives its links from the document
// tree and ignores the parameter).
func Generate(f Family, seed int64, docs, maxSize, links int) *xmlgraph.Collection {
	rng := rand.New(rand.NewSource(seed))
	switch f {
	case Trees:
		return xmlgraph.RandomTreeCollection(rng, docs, maxSize)
	case DAGs:
		return dagCollection(rng, docs, maxSize, links)
	case Linked:
		return xmlgraph.RandomCollection(rng, docs, maxSize, links)
	default:
		panic(fmt.Sprintf("testutil: unknown family %q", f))
	}
}

// dagCollection builds random documents and adds id/idref-style links that
// always point from a smaller to a strictly larger node ID.  Node IDs are
// assigned in document preorder, so every tree edge already ascends and the
// combined data graph stays acyclic.
func dagCollection(rng *rand.Rand, docs, maxSize, links int) *xmlgraph.Collection {
	c := xmlgraph.NewCollection()
	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < docs; i++ {
		b := c.NewDocument(fmt.Sprintf("dag%d.xml", i))
		n := 1 + rng.Intn(maxSize)
		b.Enter(tags[rng.Intn(len(tags))], "")
		open := 1
		for j := 1; j < n; j++ {
			if open > 1 && rng.Intn(3) == 0 {
				b.Leave()
				open--
				continue
			}
			b.Enter(tags[rng.Intn(len(tags))], "")
			open++
		}
		for open > 0 {
			b.Leave()
			open--
		}
		b.Close()
	}
	for i := 0; i < links && c.NumNodes() > 1; i++ {
		from := xmlgraph.NodeID(rng.Intn(c.NumNodes() - 1))
		to := from + 1 + xmlgraph.NodeID(rng.Intn(c.NumNodes()-1-int(from)))
		kind := xmlgraph.EdgeInterLink
		if c.DocOf(from) == c.DocOf(to) {
			kind = xmlgraph.EdgeIntraLink
		}
		c.AddLink(from, to, kind)
	}
	c.Freeze()
	return c
}
