package ontology

import (
	"math"
	"testing"
)

func movieOntology(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.AddSimilarity("movie", "science-fiction", 0.8))
	must(o.AddSimilarity("movie", "film", 0.9))
	must(o.AddSimilarity("science-fiction", "space-opera", 0.7))
	must(o.AddSimilarity("actor", "performer", 0.85))
	return o
}

func TestSimilarIncludesSelf(t *testing.T) {
	o := movieOntology(t)
	sims := o.Similar("movie", 0.1)
	if len(sims) == 0 || sims[0].Tag != "movie" || sims[0].Score != 1 {
		t.Fatalf("Similar(movie) = %v", sims)
	}
}

func TestSimilarTransitive(t *testing.T) {
	o := movieOntology(t)
	// movie -> science-fiction -> space-opera: 0.8 * 0.7 = 0.56.
	if got := o.Score("movie", "space-opera"); math.Abs(got-0.56) > 1e-9 {
		t.Errorf("Score(movie, space-opera) = %g, want 0.56", got)
	}
}

func TestSimilarThreshold(t *testing.T) {
	o := movieOntology(t)
	sims := o.Similar("movie", 0.75)
	for _, wt := range sims {
		if wt.Score < 0.75 {
			t.Errorf("below threshold: %v", wt)
		}
	}
	// film (0.9) and science-fiction (0.8) qualify, space-opera (0.56)
	// does not.
	if len(sims) != 3 {
		t.Errorf("Similar(movie, 0.75) = %v", sims)
	}
}

func TestSimilarOrdering(t *testing.T) {
	o := movieOntology(t)
	sims := o.Similar("movie", 0.1)
	for i := 1; i < len(sims); i++ {
		if sims[i].Score > sims[i-1].Score {
			t.Errorf("not sorted: %v", sims)
		}
	}
}

func TestScoreUnrelated(t *testing.T) {
	o := movieOntology(t)
	if got := o.Score("movie", "actor"); got != 0 {
		t.Errorf("Score(movie, actor) = %g", got)
	}
	if got := o.Score("movie", "movie"); got != 1 {
		t.Errorf("self score = %g", got)
	}
}

func TestBestPathWins(t *testing.T) {
	o := New()
	_ = o.AddSimilarity("a", "b", 0.5)
	_ = o.AddSimilarity("a", "c", 0.9)
	_ = o.AddSimilarity("c", "b", 0.9)
	// Direct a-b is 0.5; via c it is 0.81.
	if got := o.Score("a", "b"); math.Abs(got-0.81) > 1e-9 {
		t.Errorf("Score(a,b) = %g, want 0.81", got)
	}
}

func TestAddSimilarityValidation(t *testing.T) {
	o := New()
	if err := o.AddSimilarity("a", "b", 0); err == nil {
		t.Error("score 0 accepted")
	}
	if err := o.AddSimilarity("a", "b", 1); err == nil {
		t.Error("score 1 accepted")
	}
	if err := o.AddSimilarity("a", "a", 0.5); err == nil {
		t.Error("self edge accepted")
	}
}

func TestDuplicateKeepsHigher(t *testing.T) {
	o := New()
	_ = o.AddSimilarity("a", "b", 0.3)
	_ = o.AddSimilarity("a", "b", 0.6)
	_ = o.AddSimilarity("a", "b", 0.4)
	if got := o.Score("a", "b"); got != 0.6 {
		t.Errorf("Score = %g, want 0.6", got)
	}
}

func TestParse(t *testing.T) {
	o, err := Parse(`
# movies
movie science-fiction 0.8
movie film 0.9
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Score("movie", "film"); got != 0.9 {
		t.Errorf("parsed score = %g", got)
	}
	if tags := o.Tags(); len(tags) != 3 {
		t.Errorf("Tags = %v", tags)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"movie film",      // missing score
		"movie film xx",   // bad score
		"movie film 2.0",  // out of range
		"movie movie 0.5", // self edge
		"a b 0.5 extra",   // too many fields
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
