// Package ontology provides the tag-similarity component behind the
// semantic vagueness of FliX's motivating query language (§1.1).
//
// The XXL search engine relaxes a query tag like "movie" to semantically
// similar tags like "science-fiction" or "film", each with a similarity
// score in (0, 1] that scales the relevance of results found under the
// relaxed tag.  This package implements the ontology as a weighted
// similarity graph over element names, with transitive similarity along
// paths (scores multiply, best path wins) — a small stand-in for WordNet or
// a topic-specific ontology.
package ontology

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Ontology is a weighted undirected similarity graph over element names.
// The zero value is unusable; use New.
type Ontology struct {
	adj map[string]map[string]float64
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{adj: make(map[string]map[string]float64)}
}

// AddSimilarity records that a and b are semantically similar with the
// given score in (0, 1).  Scores are symmetric.  Adding the same pair again
// keeps the higher score.
func (o *Ontology) AddSimilarity(a, b string, score float64) error {
	if score <= 0 || score >= 1 {
		return fmt.Errorf("ontology: score %g out of (0, 1)", score)
	}
	if a == b {
		return fmt.Errorf("ontology: self similarity for %q", a)
	}
	o.addEdge(a, b, score)
	o.addEdge(b, a, score)
	return nil
}

func (o *Ontology) addEdge(a, b string, score float64) {
	m := o.adj[a]
	if m == nil {
		m = make(map[string]float64)
		o.adj[a] = m
	}
	if score > m[b] {
		m[b] = score
	}
}

// WeightedTag is a tag with its similarity score to a query tag.
type WeightedTag struct {
	Tag   string
	Score float64
}

// Similar returns every tag whose best-path similarity to the query tag is
// at least minScore, including the tag itself at score 1, sorted by
// descending score (ties alphabetically).  Path scores multiply, so
// transitive neighbours decay naturally.
func (o *Ontology) Similar(tag string, minScore float64) []WeightedTag {
	if minScore <= 0 {
		minScore = 1e-9
	}
	best := map[string]float64{tag: 1}
	h := &wtHeap{{Tag: tag, Score: 1}}
	for h.Len() > 0 {
		cur := heap.Pop(h).(WeightedTag)
		if cur.Score < best[cur.Tag] {
			continue // stale entry
		}
		for n, s := range o.adj[cur.Tag] {
			ns := cur.Score * s
			if ns >= minScore && ns > best[n] {
				best[n] = ns
				heap.Push(h, WeightedTag{Tag: n, Score: ns})
			}
		}
	}
	out := make([]WeightedTag, 0, len(best))
	for t, s := range best {
		out = append(out, WeightedTag{Tag: t, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Score returns the best-path similarity between two tags (1 when equal, 0
// when unrelated).
func (o *Ontology) Score(a, b string) float64 {
	if a == b {
		return 1
	}
	for _, wt := range o.Similar(a, 1e-9) {
		if wt.Tag == b {
			return wt.Score
		}
	}
	return 0
}

// Parse loads an ontology from a simple line format: "tagA tagB score",
// one edge per line; empty lines and #-comments are skipped.
func Parse(text string) (*Ontology, error) {
	o := New()
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("ontology: line %d: want 'tagA tagB score', got %q", ln+1, line)
		}
		var score float64
		if _, err := fmt.Sscanf(fields[2], "%g", &score); err != nil {
			return nil, fmt.Errorf("ontology: line %d: bad score %q", ln+1, fields[2])
		}
		if err := o.AddSimilarity(fields[0], fields[1], score); err != nil {
			return nil, fmt.Errorf("ontology: line %d: %w", ln+1, err)
		}
	}
	return o, nil
}

// Tags returns every tag mentioned in the ontology, sorted.
func (o *Ontology) Tags() []string {
	out := make([]string, 0, len(o.adj))
	for t := range o.adj {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// wtHeap is a max-heap over similarity scores (Dijkstra on products).
type wtHeap []WeightedTag

func (h wtHeap) Len() int           { return len(h) }
func (h wtHeap) Less(i, j int) bool { return h[i].Score > h[j].Score }
func (h wtHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *wtHeap) Push(x any)        { *h = append(*h, x.(WeightedTag)) }
func (h *wtHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
