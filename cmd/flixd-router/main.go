// Command flixd-router fronts a cluster of flixd shards with one
// scatter-gather query endpoint.  It loads the same document directory the
// shards serve (for node resolution and result rendering — it builds no
// index), probes the shards' health, bootstraps the cluster topology from a
// shard's /v1/shard/links, and answers the single-node query API by fanning
// frontier batches out to the owning shards and merging the streams back.
//
// Usage:
//
//	flixd-router -dir ./docs -shards http://h1:8080,http://h2:8080,http://h3:8080
//	             [-addr :8090] [-vnodes 64] [-quorum 0] [-hop-budget 100000]
//	             [-inflight 64] [-timeout 2s] [-shard-timeout 10s]
//	             [-retries 2] [-probe-interval 1s] [-ontology tags.txt]
//	             [-debug-addr :6061]
//
// Endpoints (single-node wire shape plus the partial-results contract —
// "partial" / "failedShards" in the body, X-Flix-Shards-Failed header):
//
//	GET /v1/descendants?start=<doc|node>&tag=<tag>[&k=][&maxdist=][&self=1][&trace=1]
//	GET /v1/connected?from=<doc|node>&to=<doc|node>[&maxdist=][&trace=1]
//	GET /v1/query?q=<expr>[&k=][&trace=1]
//	POST /v1/batch             {"queries": [...]} (many queries, one deadline)
//	GET /healthz · /statsz · /metrics
//
// ?trace=1 runs the query under distributed tracing: every shard RPC
// carries the trace flag, shards answer with TraceFragments, and the
// response carries the merged cluster trace (per-round scatter spans,
// per-shard strategy breakdowns, hop re-dispatch decisions).
//
// /healthz answers 503 until the topology is loaded and -quorum shards
// (default: all) probe ready.  A shard that fails mid-query is dropped from
// that query after retries: the response is the sound subset the remaining
// shards produced, flagged partial.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	flix "repro"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flixd-router: ")
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		dir       = flag.String("dir", "", "directory of *.xml documents (required; same corpus as the shards)")
		shards    = flag.String("shards", "", "comma-separated shard base URLs in ring order (required)")
		vnodes    = flag.Int("vnodes", 0, "ring virtual nodes per shard (0 = default; must match the shards)")
		quorum    = flag.Int("quorum", 0, "ready shards required before serving (0 = all)")
		hopBudget = flag.Int("hop-budget", 0, "cross-shard hop entries dispatched per query before returning partial (0 = default)")
		inflight  = flag.Int("inflight", 64, "admission limit: concurrent queries before 429 shedding")
		timeout   = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTO     = flag.Duration("max-timeout", 30*time.Second, "upper clamp on client-requested deadlines")
		limit     = flag.Int("limit", 100, "default result limit per request")
		maxLimit  = flag.Int("max-limit", 10000, "upper clamp on client-requested result limits")
		maxBatch  = flag.Int("batch-max", 256, "queries allowed in one POST /v1/batch request")
		shardTO   = flag.Duration("shard-timeout", 10*time.Second, "per-attempt deadline for shard RPCs")
		retries   = flag.Int("retries", 2, "shard RPC re-attempts after a transient failure")
		probe     = flag.Duration("probe-interval", time.Second, "shard health-probe cadence")
		ontoFile  = flag.String("ontology", "", "ontology file with 'tagA tagB score' lines for ~ expansion")
		drain     = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight queries")
		quiet     = flag.Bool("quiet", false, "disable per-request access logging")
		dbgAddr   = flag.String("debug-addr", "", "separate listen address for /debug/pprof (empty = disabled)")
	)
	flag.Parse()
	if *dir == "" || *shards == "" {
		flag.Usage()
		os.Exit(2)
	}
	urls := strings.Split(*shards, ",")
	for i, u := range urls {
		urls[i] = strings.TrimRight(strings.TrimSpace(u), "/")
		if urls[i] == "" {
			log.Fatalf("-shards entry %d is empty", i)
		}
	}

	loader := flix.NewLoader()
	if err := loader.LoadDir(*dir); err != nil {
		log.Fatal(err)
	}
	coll, err := loader.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range loader.Errs() {
		log.Printf("warning: %v", e)
	}

	cfg := shard.RouterConfig{
		Shards:         urls,
		VNodes:         *vnodes,
		Quorum:         *quorum,
		HopBudget:      *hopBudget,
		MaxInFlight:    *inflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		DefaultLimit:   *limit,
		MaxLimit:       *maxLimit,
		MaxBatch:       *maxBatch,
		ShardTimeout:   *shardTO,
		Retries:        *retries,
		ProbeInterval:  *probe,
	}
	if !*quiet {
		cfg.Logger = log.New(os.Stderr, "flixd-router: ", 0)
	}
	rt, err := shard.NewRouter(coll, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *ontoFile != "" {
		text, err := os.ReadFile(*ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		onto, err := flix.ParseOntology(string(text))
		if err != nil {
			log.Fatal(err)
		}
		rt.SetOntology(onto)
	}

	probeCtx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	rt.Start(probeCtx)

	// The pprof endpoints live on their own listener so profiling access
	// can be firewalled separately from the query API — same split as
	// flixd's -debug-addr.
	if *dbgAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *dbgAddr)
			if err := http.ListenAndServe(*dbgAddr, dbg); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("routing %d documents / %d elements across %d shards on %s",
		coll.NumDocs(), coll.NumNodes(), len(urls), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining in-flight queries (max %s)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		log.Print("bye")
	}
}
