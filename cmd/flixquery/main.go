// Command flixquery loads a directory of XML documents, builds a FliX
// index and evaluates path expressions against it.
//
// Usage:
//
//	flixquery -dir ./docs -query '//~movie//actor' [-config hybrid]
//	flixquery -dir ./docs -start movies.xml -tag actor [-k 20]
//	flixquery -dir ./docs -stats
//	flixquery -server http://router:8090 -query '//movie//actor' -explain
//
// The -query form uses the ranked evaluator with structural and semantic
// vagueness (an ontology can be supplied with -ontology file); the
// -start/-tag form streams raw a//b results in approximate distance order.
// With -explain either form additionally prints the query plan: per-meta-
// document strategy, entry points, duplicate drops, runtime link hops, and
// the frontier's distance progression.
//
// With -server the query runs against a live flixd or flixd-router over
// HTTP instead of a locally built index; -explain then requests ?trace=1
// and renders the server's EXPLAIN — for a router, the merged cluster
// trace with per-shard fragments and per-round scatter spans.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	flix "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flixquery: ")
	var (
		dir      = flag.String("dir", "", "directory of *.xml documents (required)")
		config   = flag.String("config", "hybrid", "configuration: naive | maximal-ppo | unconnected-hopi | hybrid | monolithic")
		partSize = flag.Int("partition", 5000, "partition size bound for unconnected-hopi / hybrid")
		strategy = flag.String("strategy", "", "force a per-meta-document strategy: ppo | hopi | apex | tc")
		queryStr = flag.String("query", "", "ranked path expression, e.g. //~movie//actor")
		ontoFile = flag.String("ontology", "", "ontology file with 'tagA tagB score' lines for ~ expansion")
		startDoc = flag.String("start", "", "document name whose root anchors a raw a//b query")
		tag      = flag.String("tag", "", "element name for the raw query (empty = wildcard)")
		k        = flag.Int("k", 0, "maximum results (0 = all)")
		maxDist  = flag.Int("maxdist", 0, "distance threshold (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "abort the query after this duration (0 = no deadline), e.g. 500ms")
		explain  = flag.Bool("explain", false, "trace the evaluation and print the query plan after the results")
		stats    = flag.Bool("stats", false, "print collection statistics and index summary, then exit")
		saveIx   = flag.String("save", "", "write the built index to this file")
		loadIx   = flag.String("load", "", "load a previously saved index instead of building (-config is ignored)")
		server   = flag.String("server", "", "base URL of a running flixd or flixd-router; query remotely instead of building an index")
	)
	flag.Parse()
	if *server != "" {
		runRemote(strings.TrimRight(*server, "/"), *queryStr, *startDoc, *tag, *k, *maxDist, *timeout, *explain)
		return
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	loader := flix.NewLoader()
	if err := loader.LoadDir(*dir); err != nil {
		log.Fatal(err)
	}
	coll, err := loader.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range loader.Errs() {
		log.Printf("warning: %v", e)
	}

	var ix *flix.Index
	if *loadIx != "" {
		ix, err = flix.LoadSnapshotFile(coll, *loadIx, true)
		if err != nil {
			log.Fatal(err)
		}
		defer ix.Close()
	} else {
		cfg, err := parseConfig(*config, *partSize, *strategy)
		if err != nil {
			log.Fatal(err)
		}
		ix, err = flix.Build(coll, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *saveIx != "" {
		f, err := os.Create(*saveIx)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ix.WriteTo(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("index saved to %s", *saveIx)
	}

	if *stats {
		fmt.Println(flix.ComputeStats(coll))
		fmt.Println(ix.Describe())
		if sz, err := ix.SizeBytes(); err == nil {
			fmt.Printf("index size: %d bytes\n", sz)
		}
		return
	}

	// The deadline uses the same cancellation hook as the flixd server:
	// the context's Done channel threads into the evaluator's
	// priority-queue loop, so a timed-out query stops promptly and the
	// results printed so far stand.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tr *flix.Trace
	if *explain {
		tr = flix.NewTrace(0)
	}
	switch {
	case *queryStr != "":
		runRanked(ctx, ix, coll, *queryStr, *ontoFile, *k, tr)
	case *startDoc != "":
		runRaw(ctx, ix, coll, *startDoc, *tag, *k, *maxDist, tr)
	default:
		log.Fatal("one of -query, -start or -stats is required")
	}
	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Summary(false).Render())
	}
	if ctx.Err() != nil {
		log.Printf("query aborted after %v; results above are partial", *timeout)
	}
}

func parseConfig(name string, partSize int, strategy string) (flix.Config, error) {
	cfg := flix.Config{PartitionSize: partSize, Strategy: strategy}
	switch name {
	case "naive":
		cfg.Kind = flix.Naive
	case "maximal-ppo":
		cfg.Kind = flix.MaximalPPO
	case "unconnected-hopi":
		cfg.Kind = flix.UnconnectedHOPI
	case "hybrid":
		cfg.Kind = flix.Hybrid
	case "monolithic":
		cfg.Kind = flix.Monolithic
	default:
		return cfg, fmt.Errorf("unknown configuration %q", name)
	}
	return cfg, nil
}

func runRanked(ctx context.Context, ix *flix.Index, coll *flix.Collection, expr, ontoFile string, k int, tr *flix.Trace) {
	q, err := flix.ParseQuery(expr)
	if err != nil {
		log.Fatal(err)
	}
	eval := &flix.Evaluator{Index: ix, MaxResults: k, Cancel: ctx.Done(), Tracer: tr}
	if ontoFile != "" {
		text, err := os.ReadFile(ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		onto, err := flix.ParseOntology(string(text))
		if err != nil {
			log.Fatal(err)
		}
		eval.Ontology = onto
	}
	var matches []flix.Match
	if k > 0 {
		// Top-k uses the threshold-algorithm early termination.
		matches = eval.EvaluateTopK(q, k)
	} else {
		matches = eval.Evaluate(q)
	}
	if len(matches) == 0 {
		fmt.Println("no results")
		return
	}
	for i, m := range matches {
		fmt.Printf("%3d. %.3f  <%s>  %s  (doc %s, path length %d)\n",
			i+1, m.Score, coll.Tag(m.Node), snippet(coll.Node(m.Node).Text),
			coll.Doc(coll.DocOf(m.Node)).Name, m.PathLen)
	}
}

func runRaw(ctx context.Context, ix *flix.Index, coll *flix.Collection, startDoc, tag string, k, maxDist int, tr *flix.Trace) {
	d, ok := coll.DocByName(startDoc)
	if !ok {
		log.Fatalf("document %q not in collection", startDoc)
	}
	start := coll.Doc(d).Root
	opts := flix.Options{MaxResults: k, MaxDist: int32(maxDist), Cancel: ctx.Done(), Tracer: tr}
	i := 0
	ix.Descendants(start, tag, opts, func(r flix.Result) bool {
		i++
		fmt.Printf("%3d. dist=%-4d <%s>  %s  (doc %s)\n",
			i, r.Dist, coll.Tag(r.Node), snippet(coll.Node(r.Node).Text),
			coll.Doc(coll.DocOf(r.Node)).Name)
		return true
	})
	if i == 0 {
		fmt.Println("no results")
	}
}

func snippet(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	if s == "" {
		return `""`
	}
	return fmt.Sprintf("%q", s)
}
