package main

import (
	"testing"

	flix "repro"
)

func TestParseConfig(t *testing.T) {
	cases := []struct {
		name string
		kind flix.ConfigKind
	}{
		{"naive", flix.Naive},
		{"maximal-ppo", flix.MaximalPPO},
		{"unconnected-hopi", flix.UnconnectedHOPI},
		{"hybrid", flix.Hybrid},
		{"monolithic", flix.Monolithic},
	}
	for _, c := range cases {
		cfg, err := parseConfig(c.name, 1234, "apex")
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cfg.Kind != c.kind || cfg.PartitionSize != 1234 || cfg.Strategy != "apex" {
			t.Errorf("%s: %+v", c.name, cfg)
		}
	}
	if _, err := parseConfig("bogus", 0, ""); err == nil {
		t.Error("bogus config accepted")
	}
}

func TestSnippet(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", `""`},
		{"hello", `"hello"`},
		{"  spaced\n\tout  ", `"spaced out"`},
		{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", `"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa..."`},
	}
	for _, c := range cases {
		if got := snippet(c.in); got != c.want {
			t.Errorf("snippet(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}
