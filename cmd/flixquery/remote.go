package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/obs"
)

// This file is flixquery's remote mode: -server points it at a running
// flixd or flixd-router and queries go over the HTTP API instead of a
// locally built index.  With -explain the request carries ?trace=1 and the
// response's trace is rendered — a single-node EXPLAIN plan from flixd, or
// the merged cluster trace (per-shard fragments, per-round scatter spans)
// from a router.

// remoteWire is the shared shape of /v1/descendants and /v1/query
// responses; unknown fields (score on descendants, dist on query) simply
// stay zero.
type remoteWire struct {
	Results []struct {
		Node    int64   `json:"node"`
		Tag     string  `json:"tag"`
		Doc     string  `json:"doc"`
		Text    string  `json:"text"`
		Dist    int32   `json:"dist"`
		Score   float64 `json:"score"`
		PathLen int32   `json:"pathLen"`
	} `json:"results"`
	TimedOut     bool            `json:"timedOut"`
	Partial      bool            `json:"partial"`
	FailedShards []int           `json:"failedShards"`
	Rounds       int             `json:"rounds"`
	Trace        json.RawMessage `json:"trace"`
}

// runRemote sends one query to the server and prints results plus, with
// -explain, the rendered trace.
func runRemote(server, queryStr, startDoc, tag string, k, maxDist int, timeout time.Duration, explain bool) {
	q := url.Values{}
	var path string
	switch {
	case queryStr != "":
		path = "/v1/query"
		q.Set("q", queryStr)
	case startDoc != "":
		path = "/v1/descendants"
		q.Set("start", startDoc)
		if tag != "" {
			q.Set("tag", tag)
		}
		if maxDist > 0 {
			q.Set("maxdist", strconv.Itoa(maxDist))
		}
	default:
		log.Fatal("remote mode needs -query or -start")
	}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	if explain {
		q.Set("trace", "1")
	}

	resp, err := http.Get(server + path + "?" + q.Encode())
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(body, &e) //nolint:errcheck
		log.Fatalf("%s: status %d: %s", path, resp.StatusCode, e.Error)
	}
	var w remoteWire
	if err := json.Unmarshal(body, &w); err != nil {
		log.Fatalf("decode %s response: %v", path, err)
	}

	if len(w.Results) == 0 {
		fmt.Println("no results")
	}
	for i, r := range w.Results {
		if path == "/v1/query" {
			fmt.Printf("%3d. %.3f  <%s>  %q  (doc %s, path length %d)\n",
				i+1, r.Score, r.Tag, r.Text, r.Doc, r.PathLen)
		} else {
			fmt.Printf("%3d. dist=%-4d <%s>  %q  (doc %s)\n", i+1, r.Dist, r.Tag, r.Text, r.Doc)
		}
	}
	if w.TimedOut {
		log.Print("server deadline expired; results above are partial")
	}
	if w.Partial {
		log.Printf("PARTIAL results: shards %v failed", w.FailedShards)
	}
	if explain {
		fmt.Println()
		fmt.Print(renderRemoteTrace(w.Trace))
	}
}

// renderRemoteTrace renders the trace member of a traced response — an
// obs.ClusterTrace from a router, an obs.Summary from a single flixd.  The
// two are told apart by the cluster-only "shards" key.
func renderRemoteTrace(raw json.RawMessage) string {
	if len(raw) == 0 {
		return "(server returned no trace; is ?trace=1 supported?)\n"
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Sprintf("(undecodable trace: %v)\n", err)
	}
	if _, ok := probe["shards"]; ok {
		var ct obs.ClusterTrace
		if err := json.Unmarshal(raw, &ct); err != nil {
			return fmt.Sprintf("(undecodable cluster trace: %v)\n", err)
		}
		return ct.Render()
	}
	var s obs.Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Sprintf("(undecodable trace summary: %v)\n", err)
	}
	return s.Render()
}
