// Command flixd serves a FliX index over HTTP: it loads a directory of XML
// documents, restores a persisted index (or builds one), and answers
// concurrent connection and ranked-path queries until terminated.
//
// Usage:
//
//	flixd -dir ./docs [-addr :8080] [-load index.flix] [-config hybrid]
//	      [-build-parallelism 0] [-ontology tags.txt] [-inflight 64]
//	      [-timeout 2s] [-cache 1024] [-slow-query 100ms]
//	      [-slow-query-sample 10] [-debug-addr :6060]
//
// Endpoints (see internal/server):
//
//	GET /v1/descendants?start=<doc|node>&tag=<tag>[&k=][&maxdist=][&timeout=]
//	GET /v1/connected?from=<doc|node>&to=<doc|node>[&maxdist=]
//	GET /v1/query?q=<expr>[&k=]
//	GET /healthz · /statsz · /metrics
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries before exiting (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	flix "repro"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flixd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dir      = flag.String("dir", "", "directory of *.xml documents (required)")
		loadIx   = flag.String("load", "", "restore a persisted index from this file instead of building")
		config   = flag.String("config", "hybrid", "configuration: naive | maximal-ppo | unconnected-hopi | hybrid | monolithic")
		partSize = flag.Int("partition", 5000, "partition size bound for unconnected-hopi / hybrid")
		strategy = flag.String("strategy", "", "force a per-meta-document strategy: ppo | hopi | apex | tc")
		buildPar = flag.Int("build-parallelism", 0, "index-build worker pool width (0 = all CPUs, 1 = serial)")
		ontoFile = flag.String("ontology", "", "ontology file with 'tagA tagB score' lines for ~ expansion")
		inflight = flag.Int("inflight", 64, "admission limit: concurrent queries before 429 shedding")
		timeout  = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTO    = flag.Duration("max-timeout", 30*time.Second, "upper clamp on client-requested deadlines")
		limit    = flag.Int("limit", 100, "default result limit per request")
		maxLimit = flag.Int("max-limit", 10000, "upper clamp on client-requested result limits")
		cacheSz  = flag.Int("cache", 1024, "query-cache capacity (0 disables)")
		drain    = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight queries")
		quiet    = flag.Bool("quiet", false, "disable per-request access logging")
		slowQ    = flag.Duration("slow-query", 0, "log sampled queries slower than this with their full trace (0 disables)")
		slowN    = flag.Int("slow-query-sample", 1, "trace 1 in N queries for the slow-query log")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	loader := flix.NewLoader()
	if err := loader.LoadDir(*dir); err != nil {
		log.Fatal(err)
	}
	coll, err := loader.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range loader.Errs() {
		log.Printf("warning: %v", e)
	}

	var ix *flix.Index
	t0 := time.Now()
	if *loadIx != "" {
		f, err := os.Open(*loadIx)
		if err != nil {
			log.Fatal(err)
		}
		ix, err = flix.Load(coll, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index restored from %s in %s", *loadIx, time.Since(t0).Round(time.Millisecond))
	} else {
		cfg := flix.Config{PartitionSize: *partSize, Strategy: *strategy}
		switch *config {
		case "naive":
			cfg.Kind = flix.Naive
		case "maximal-ppo":
			cfg.Kind = flix.MaximalPPO
		case "unconnected-hopi":
			cfg.Kind = flix.UnconnectedHOPI
		case "hybrid":
			cfg.Kind = flix.Hybrid
		case "monolithic":
			cfg.Kind = flix.Monolithic
		default:
			log.Fatalf("unknown configuration %q", *config)
		}
		ix, err = flix.BuildWithOptions(coll, cfg, flix.BuildOptions{Parallelism: *buildPar})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index built in %s (%s)", time.Since(t0).Round(time.Millisecond), ix.BuildStats())
	}
	log.Print(ix.Describe())

	scfg := server.Config{
		MaxInFlight:        *inflight,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTO,
		DefaultLimit:       *limit,
		MaxLimit:           *maxLimit,
		CacheSize:          *cacheSz, // 0 from the flag means disabled
		SlowQueryThreshold: *slowQ,
		SlowQuerySample:    *slowN,
	}
	if *cacheSz <= 0 {
		scfg.CacheSize = -1
	}
	if !*quiet {
		scfg.Logger = log.New(os.Stderr, "flixd: ", 0)
	}
	s := server.New(ix, scfg)
	if *ontoFile != "" {
		text, err := os.ReadFile(*ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		onto, err := flix.ParseOntology(string(text))
		if err != nil {
			log.Fatal(err)
		}
		s.SetOntology(onto)
	}

	// The pprof endpoints live on their own listener so profiling access
	// can be firewalled separately from the query API.
	if *dbgAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *dbgAddr)
			if err := http.ListenAndServe(*dbgAddr, dbg); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d documents / %d elements on %s", coll.NumDocs(), coll.NumNodes(), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining in-flight queries (max %s)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		log.Print("bye")
	}
}
