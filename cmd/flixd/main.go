// Command flixd serves a FliX index over HTTP: it loads a directory of XML
// documents, restores a persisted index (or builds one), and answers
// concurrent connection and ranked-path queries until terminated.
//
// Usage:
//
//	flixd -dir ./docs [-addr :8080] [-load index.flix] [-config hybrid]
//	      [-build-parallelism 0] [-ontology tags.txt] [-inflight 64]
//	      [-timeout 2s] [-cache 1024] [-slow-query 100ms]
//	      [-slow-query-sample 10] [-debug-addr :6060]
//	      [-reindex-interval 0] [-snapshot-dir gens/] [-snapshot-retain 3]
//	      [-snapshot-format v1|v2] [-snapshot-compress] [-mmap]
//	      [-shard-id 0 -shard-count 3 [-shard-vnodes 64]]
//
// Endpoints (see internal/server):
//
//	GET  /v1/descendants?start=<doc|node>&tag=<tag>[&k=][&maxdist=][&timeout=]
//	GET  /v1/connected?from=<doc|node>&to=<doc|node>[&maxdist=]
//	GET  /v1/query?q=<expr>[&k=]
//	POST /v1/batch             {"queries": [{"q": ...} | {"start": ..., "tag": ...}, ...]}
//	POST /v1/admin/reindex[?dry=1][&force=1]
//	GET  /healthz · /statsz · /metrics
//
// The server binds its port immediately and builds the initial index in the
// background; /healthz answers 503 (not ready) until generation 1 is live.
// With -reindex-interval > 0 a background re-optimizer re-plans the index
// against the live query load and hot-swaps improved generations in without
// dropping a query; -snapshot-dir persists each generation (pruned to
// -snapshot-retain) and warm-starts from the newest one on restart.
// -snapshot-format selects the persisted layout: "v1" is the portable
// stream, "v2" the offset-based container that warm start serves straight
// from a read-only memory mapping (-mmap, default on) with no parse step.
// -snapshot-compress writes v2 sections in their compressed encodings
// (bit-packed PPO intervals, delta-packed HOPI labels), falling back to
// raw per section when compression would not pay; compressed snapshots are
// served zero-copy just like raw ones.  Warm start and -load sniff the
// format per file, so either binary setting reads both.
//
// With -shard-id/-shard-count the process runs as one shard of a
// flixd-router cluster: it builds the same full index, additionally serves
// POST /v1/shard/eval and GET /v1/shard/links, and answers partial-frontier
// evaluations over the meta documents the consistent-hash ring assigns to
// it.  The live-reindex loop is disabled in shard mode (the router
// fingerprints the decomposition).
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries before exiting (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	flix "repro"
	"repro/internal/rebuild"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flixd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dir      = flag.String("dir", "", "directory of *.xml documents (required)")
		loadIx   = flag.String("load", "", "restore a persisted index from this file instead of building")
		config   = flag.String("config", "hybrid", "configuration: naive | maximal-ppo | unconnected-hopi | hybrid | monolithic")
		partSize = flag.Int("partition", 5000, "partition size bound for unconnected-hopi / hybrid")
		strategy = flag.String("strategy", "", "force a per-meta-document strategy: ppo | hopi | apex | tc")
		buildPar = flag.Int("build-parallelism", 0, "index-build worker pool width (0 = all CPUs, 1 = serial)")
		ontoFile = flag.String("ontology", "", "ontology file with 'tagA tagB score' lines for ~ expansion")
		inflight = flag.Int("inflight", 64, "admission limit: concurrent queries before 429 shedding")
		timeout  = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTO    = flag.Duration("max-timeout", 30*time.Second, "upper clamp on client-requested deadlines")
		limit    = flag.Int("limit", 100, "default result limit per request")
		maxLimit = flag.Int("max-limit", 10000, "upper clamp on client-requested result limits")
		maxBatch = flag.Int("batch-max", 256, "queries allowed in one POST /v1/batch request")
		cacheSz  = flag.Int("cache", 1024, "query-cache capacity (0 disables)")
		drain    = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight queries")
		quiet    = flag.Bool("quiet", false, "disable per-request access logging")
		slowQ    = flag.Duration("slow-query", 0, "log sampled queries slower than this with their full trace (0 disables)")
		slowN    = flag.Int("slow-query-sample", 1, "trace 1 in N queries for the slow-query log")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		reindex  = flag.Duration("reindex-interval", 0, "re-plan the index against the live load this often and hot-swap improvements (0 disables the loop; POST /v1/admin/reindex still works)")
		minQ     = flag.Int64("reindex-min-queries", 50, "queries a generation must serve before its statistics are trusted")
		snapDir  = flag.String("snapshot-dir", "", "persist each index generation here and warm-start from the newest (empty disables)")
		snapKeep = flag.Int("snapshot-retain", 3, "generation snapshots to keep in -snapshot-dir")
		snapFmt  = flag.String("snapshot-format", "v1", "persisted snapshot layout: v1 (portable stream) | v2 (mmap-able container)")
		snapZip  = flag.Bool("snapshot-compress", false, "persist v2 snapshots with compressed section encodings (requires -snapshot-format v2)")
		useMmap  = flag.Bool("mmap", true, "serve v2 snapshots from a read-only memory mapping instead of reading them into the heap")
		shardID  = flag.Int("shard-id", -1, "run as shard N of a flixd-router cluster (-1 disables shard mode)")
		shardN   = flag.Int("shard-count", 0, "total shards in the cluster (required with -shard-id)")
		shardVN  = flag.Int("shard-vnodes", 0, "ring virtual nodes per shard (0 = default; must match the router)")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *shardID >= 0 && (*shardN < 1 || *shardID >= *shardN) {
		log.Fatalf("-shard-id %d needs -shard-count > %d", *shardID, *shardID)
	}
	if *snapFmt != "v1" && *snapFmt != "v2" {
		log.Fatalf("-snapshot-format %q: want v1 or v2", *snapFmt)
	}
	if *snapZip && *snapFmt != "v2" {
		log.Fatalf("-snapshot-compress requires -snapshot-format v2")
	}

	loader := flix.NewLoader()
	if err := loader.LoadDir(*dir); err != nil {
		log.Fatal(err)
	}
	coll, err := loader.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range loader.Errs() {
		log.Printf("warning: %v", e)
	}

	cfg := flix.Config{PartitionSize: *partSize, Strategy: *strategy}
	switch *config {
	case "naive":
		cfg.Kind = flix.Naive
	case "maximal-ppo":
		cfg.Kind = flix.MaximalPPO
	case "unconnected-hopi":
		cfg.Kind = flix.UnconnectedHOPI
	case "hybrid":
		cfg.Kind = flix.Hybrid
	case "monolithic":
		cfg.Kind = flix.Monolithic
	default:
		log.Fatalf("unknown configuration %q", *config)
	}

	scfg := server.Config{
		MaxInFlight:        *inflight,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTO,
		DefaultLimit:       *limit,
		MaxLimit:           *maxLimit,
		MaxBatch:           *maxBatch,
		CacheSize:          *cacheSz, // 0 from the flag means disabled
		SlowQueryThreshold: *slowQ,
		SlowQuerySample:    *slowN,
	}
	if *cacheSz <= 0 {
		scfg.CacheSize = -1
	}
	if *shardID >= 0 {
		scfg.Shard = &server.ShardConfig{ID: *shardID, Count: *shardN, VNodes: *shardVN}
		// A shard's meta-document decomposition is fingerprinted into the
		// router's topology; swapping to a re-partitioned index mid-flight
		// would silently remap node ownership, so the reindex loop stays
		// off in shard mode (cluster reindexing is a rolling restart).
		if *reindex > 0 {
			log.Printf("shard mode: ignoring -reindex-interval %s", *reindex)
			*reindex = 0
		}
	}
	if !*quiet {
		scfg.Logger = log.New(os.Stderr, "flixd: ", 0)
	}
	// The server starts pending: the port binds and /healthz answers (503)
	// immediately while the initial index builds in the background.
	s := server.NewPending(coll, scfg)
	if *ontoFile != "" {
		text, err := os.ReadFile(*ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		onto, err := flix.ParseOntology(string(text))
		if err != nil {
			log.Fatal(err)
		}
		s.SetOntology(onto)
	}

	// Initial build + live-reindexing loop, off the serving path.  A build
	// failure is fatal: a server that can never become ready should crash
	// loudly, not 503 forever.
	rebuildCtx, stopRebuild := context.WithCancel(context.Background())
	defer stopRebuild()
	go func() {
		ix := initialIndex(coll, cfg, *loadIx, *snapDir, *buildPar, *useMmap)
		log.Print(ix.Describe())
		gen := s.Install(ix, "initial index")
		log.Printf("generation %d live", gen)
		mgr := rebuild.New(coll, s, rebuild.Config{
			Interval:         *reindex,
			MinQueries:       *minQ,
			Parallelism:      *buildPar,
			SnapshotDir:      *snapDir,
			Retain:           *snapKeep,
			SnapshotFormat:   *snapFmt,
			SnapshotCompress: *snapZip,
			Logger:           log.Default(),
		})
		s.SetReindexer(mgr)
		if *reindex > 0 {
			log.Printf("live reindexing every %s", *reindex)
		}
		mgr.Run(rebuildCtx) // returns immediately when -reindex-interval is 0
	}()

	// The pprof endpoints live on their own listener so profiling access
	// can be firewalled separately from the query API.
	if *dbgAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *dbgAddr)
			if err := http.ListenAndServe(*dbgAddr, dbg); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *shardID >= 0 {
		log.Printf("serving %d documents / %d elements on %s as shard %d/%d",
			coll.NumDocs(), coll.NumNodes(), *addr, *shardID, *shardN)
	} else {
		log.Printf("serving %d documents / %d elements on %s", coll.NumDocs(), coll.NumNodes(), *addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining in-flight queries (max %s)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		log.Print("bye")
	}
}

// initialIndex produces generation 1: an explicitly named snapshot (-load),
// else the newest generation snapshot in -snapshot-dir (warm start — a
// stale or incompatible one falls back to building), else a fresh build.
// Snapshot files of either format are accepted: the loader sniffs the
// magic, parsing v1 streams and serving v2 containers in place (mapped
// when useMmap).
func initialIndex(coll *flix.Collection, cfg flix.Config, loadIx, snapDir string, parallelism int, useMmap bool) *flix.Index {
	t0 := time.Now()
	if loadIx != "" {
		ix, err := flix.LoadSnapshotFile(coll, loadIx, useMmap)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index restored from %s (%s) in %s",
			loadIx, ix.StorageInfo().Format, time.Since(t0).Round(time.Millisecond))
		return ix
	}
	if snapDir != "" {
		if path, err := rebuild.LatestSnapshot(snapDir); err == nil && path != "" {
			ix, err := flix.LoadSnapshotFile(coll, path, useMmap)
			if err == nil {
				log.Printf("index warm-started from %s (%s) in %s",
					path, ix.StorageInfo().Format, time.Since(t0).Round(time.Millisecond))
				return ix
			}
			log.Printf("warning: snapshot %s unusable (%v); building fresh", path, err)
		}
	}
	ix, err := flix.BuildWithOptions(coll, cfg, flix.BuildOptions{Parallelism: parallelism})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("index built in %s (%s)", time.Since(t0).Round(time.Millisecond), ix.BuildStats())
	return ix
}
