package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/xmlgraph"
)

// shardRow is one shard count's record in BENCH_shard.json: scatter-gather
// throughput and tail latency through a real router + N flixd shards, every
// response checked against the BFS oracle.
type shardRow struct {
	Shards        int     `json:"shards"`
	Queries       int     `json:"queries"`
	Results       int64   `json:"results"`
	ResultsPerSec float64 `json:"resultsPerSec"`
	P50Micros     int64   `json:"p50Micros"`
	P99Micros     int64   `json:"p99Micros"`
	Rounds        float64 `json:"roundsPerQuery"`
	Verified      bool    `json:"oracleVerified"`
}

type shardResult struct {
	Experiment string     `json:"experiment"`
	Config     string     `json:"config"`
	Docs       int        `json:"docs"`
	Elements   int        `json:"elements"`
	Rows       []shardRow `json:"rows"`
}

// shardExperiment measures the sharded serving tier end to end: the same
// prebuilt index served by 1, 2 and 4 in-process shards behind a router,
// over real HTTP.  One shard is the router-overhead baseline; more shards
// trade per-query fan-out (rounds, RPCs) against per-shard frontier work.
// Every response is compared element-for-element against the BFS oracle, so
// the numbers are only reported for provably exact configurations.
func shardExperiment(docs int, seed int64, out string) {
	fmt.Println("=== Shard: scatter-gather scaling across 1/2/4 shards ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 2000})
	if err != nil {
		log.Fatal(err)
	}

	// The query mix: the hub element's heavy article scan plus a spread of
	// lighter per-document scans, each oracle-checked.
	var queries []shardQuery
	add := func(start xmlgraph.NodeID, tag string) {
		queries = append(queries, shardQuery{start: start, tag: tag, want: e.Coll.DescendantsByTag(start, tag)})
	}
	add(e.Start, "article")
	add(e.Start, "title")
	for d := 0; d < e.Coll.NumDocs() && len(queries) < 26; d += e.Coll.NumDocs()/24 + 1 {
		add(e.Coll.Doc(xmlgraph.DocID(d)).Root, "author")
	}

	res := shardResult{
		Experiment: "shard",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
	}
	fmt.Printf("%8s %10s %14s %12s %12s %14s\n", "shards", "queries", "results/sec", "p50", "p99", "rounds/query")
	for _, n := range []int{1, 2, 4} {
		row := runShardCount(e.Coll, ix, n, queries)
		res.Rows = append(res.Rows, row)
		fmt.Printf("%8d %10d %14.0f %12s %12s %14.2f\n", row.Shards, row.Queries, row.ResultsPerSec,
			time.Duration(row.P50Micros)*time.Microsecond, time.Duration(row.P99Micros)*time.Microsecond, row.Rounds)
	}
	fmt.Println()

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// shardQuery is one oracle-checked query of the shard experiment's mix.
type shardQuery struct {
	start xmlgraph.NodeID
	tag   string
	want  []xmlgraph.NodeDist
}

// runShardCount stands up n shard servers plus a router over real HTTP,
// replays the query mix through /v1/descendants, verifies every stream
// against its oracle, and reports throughput and latency percentiles.
func runShardCount(coll *xmlgraph.Collection, ix *flix.Index, n int, queries []shardQuery) shardRow {
	shards := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := server.New(ix, server.Config{
			Shard:     &server.ShardConfig{ID: i, Count: n},
			CacheSize: -1,
		})
		shards[i] = httptest.NewServer(s.Handler())
		urls[i] = shards[i].URL
	}
	defer func() {
		for _, ts := range shards {
			ts.Close()
		}
	}()
	rt, err := shard.NewRouter(coll, shard.RouterConfig{
		Shards:        urls,
		ProbeInterval: 20 * time.Millisecond,
		MaxLimit:      1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := rt.WaitReady(wctx); err != nil {
		log.Fatalf("router with %d shards never became ready: %v", n, err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	type wire struct {
		Results []struct {
			Node xmlgraph.NodeID `json:"node"`
			Dist int32           `json:"dist"`
		} `json:"results"`
		Partial bool `json:"partial"`
		Rounds  int  `json:"rounds"`
	}
	const passes = 3 // pass 0 warms the page cache and connection pools
	var durs []time.Duration
	var results, rounds int64
	nq := 0
	for pass := 0; pass < passes; pass++ {
		for _, q := range queries {
			t0 := time.Now()
			resp, err := http.Get(fmt.Sprintf("%s/v1/descendants?start=%d&tag=%s&k=%d&timeout=30s",
				router.URL, q.start, q.tag, len(q.want)+1))
			if err != nil {
				log.Fatal(err)
			}
			var w wire
			if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			d := time.Since(t0)
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("%d shards: status %d", n, resp.StatusCode)
			}
			if w.Partial {
				log.Fatalf("%d shards: healthy cluster answered partial", n)
			}
			if len(w.Results) != len(q.want) {
				log.Fatalf("%d shards: start=%d tag=%s: %d results, oracle %d",
					n, q.start, q.tag, len(w.Results), len(q.want))
			}
			for i, r := range w.Results {
				if r.Node != q.want[i].Node || r.Dist != q.want[i].Dist {
					log.Fatalf("%d shards: start=%d tag=%s result %d: (%d,%d) != oracle (%d,%d)",
						n, q.start, q.tag, i, r.Node, r.Dist, q.want[i].Node, q.want[i].Dist)
				}
			}
			if pass > 0 {
				durs = append(durs, d)
				results += int64(len(w.Results))
				rounds += int64(w.Rounds)
				nq++
			}
		}
	}

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	pct := func(p float64) time.Duration { return durs[min(int(p*float64(len(durs))), len(durs)-1)] }
	return shardRow{
		Shards:        n,
		Queries:       nq,
		Results:       results,
		ResultsPerSec: float64(results) / total.Seconds(),
		P50Micros:     pct(0.50).Microseconds(),
		P99Micros:     pct(0.99).Microseconds(),
		Rounds:        float64(rounds) / float64(nq),
		Verified:      true,
	}
}
