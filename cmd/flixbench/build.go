package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
)

// buildRun is one measured build at a fixed worker-pool width.
type buildRun struct {
	Parallelism int   `json:"parallelism"`
	WallNs      int64 `json:"wallNs"`
	// Speedup is serial wall-clock over this run's wall-clock.
	Speedup float64 `json:"speedup"`
	// IndexSHA256 fingerprints the serialized index; every run must
	// report the serial run's hash (the determinism guarantee).
	IndexSHA256       string `json:"indexSha256"`
	IdenticalToSerial bool   `json:"identicalToSerial"`
}

// buildResult is the machine-readable record of the build experiment,
// written to BENCH_build.json so CI and EXPERIMENTS.md can track the
// parallel build pipeline's scaling and its determinism guarantee.
type buildResult struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`
	MetaDocs   int    `json:"metaDocuments"`
	// CPUs is runtime.NumCPU on the measuring machine — speedups are
	// bounded by it, so a 1-CPU container cannot show parallel gains.
	CPUs int        `json:"cpus"`
	Runs []buildRun `json:"runs"`
	// QueryResultsIdentical confirms the start//article result stream
	// (nodes, distances, order) is byte-identical across all runs.
	QueryResultsIdentical bool `json:"queryResultsIdentical"`
}

// buildExperiment measures the parallel index-build pipeline: wall-clock at
// increasing worker-pool widths over the generated DBLP collection, with
// byte-identical serialized indexes and query results across all widths.
func buildExperiment(docs int, seed int64, out string) {
	fmt.Println("=== Build: parallel index-construction pipeline ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	// Size-bounded HOPI partitions: many similar-sized graph-shaped meta
	// documents, the configuration whose build has the most independent
	// work to spread across the pool.
	cfg := flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 2000}

	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		widths = append(widths, n)
	}

	r := buildResult{
		Experiment:            "build",
		Config:                fmt.Sprintf("%s/%d", cfg.Kind, cfg.PartitionSize),
		Docs:                  e.Coll.NumDocs(),
		Elements:              e.Coll.NumNodes(),
		CPUs:                  runtime.NumCPU(),
		QueryResultsIdentical: true,
	}

	var serialWall time.Duration
	var serialSHA, serialResults string
	for _, w := range widths {
		// Warm-up pass (page cache, allocator), then the measured pass.
		if _, err := flix.BuildWithOptions(e.Coll, cfg, flix.BuildOptions{Parallelism: w}); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		ix, err := flix.BuildWithOptions(e.Coll, cfg, flix.BuildOptions{Parallelism: w})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		sha := indexSHA(ix)
		results := queryDigest(ix, e)
		run := buildRun{Parallelism: w, WallNs: wall.Nanoseconds(), IndexSHA256: sha}
		if w == widths[0] {
			serialWall, serialSHA, serialResults = wall, sha, results
			r.MetaDocs = ix.NumMetaDocuments()
		}
		run.Speedup = float64(serialWall) / float64(wall)
		run.IdenticalToSerial = sha == serialSHA
		if !run.IdenticalToSerial {
			log.Fatalf("parallelism %d produced a different index than the serial build", w)
		}
		if results != serialResults {
			r.QueryResultsIdentical = false
			log.Fatalf("parallelism %d produced different query results than the serial build", w)
		}
		r.Runs = append(r.Runs, run)
		fmt.Printf("parallelism %2d: build %10s  speedup %.2fx  (%s)\n",
			w, wall.Round(time.Millisecond), run.Speedup, ix.BuildStats())
	}
	fmt.Printf("%d meta documents, %d CPUs; indexes and query results byte-identical across widths\n\n",
		r.MetaDocs, r.CPUs)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// indexSHA fingerprints the serialized index.
func indexSHA(ix *flix.Index) string {
	h := sha256.New()
	if _, err := ix.WriteTo(h); err != nil {
		log.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// queryDigest renders the full start//article result stream — node IDs,
// distances and their order — into a hashable byte form.
func queryDigest(ix *flix.Index, e *bench.Experiment) string {
	var buf bytes.Buffer
	ix.Descendants(e.Start, "article", flix.Options{}, func(r flix.Result) bool {
		fmt.Fprintf(&buf, "%d:%d;", r.Node, r.Dist)
		return true
	})
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}
