package main

// The topk experiment gates the ranked top-k rewrite: the incremental
// indexed top-k heap, pooled stream scratch, decay table and banded probe
// (internal/query/topk.go) measured against the frozen pre-optimization
// evaluator (ReferenceEvaluateTopK) in the same binary on the same
// collection, plus the /v1/batch amortization curve over real HTTP.
// Acceptance: the optimized path must beat the reference by the configured
// latency and allocation factors, after first proving it returns the exact
// reference ranking prefix.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
)

// topkBatchPoint is one /v1/batch throughput measurement.
type topkBatchPoint struct {
	Size          int     `json:"size"`
	NsPerQuery    int64   `json:"nsPerQuery"`
	QueriesPerSec float64 `json:"queriesPerSec"`
}

// topkResult is the machine-readable record written to BENCH_topk.json.
type topkResult struct {
	Experiment string        `json:"experiment"`
	Config     string        `json:"config"`
	Docs       int           `json:"docs"`
	Elements   int           `json:"elements"`
	Cases      []hotpathCase `json:"cases"`
	// SpeedupTopK / AllocRatioTopK are reference-topk divided by topk —
	// the tentpole acceptance metrics.
	SpeedupTopK    float64          `json:"speedupTopK"`
	AllocRatioTopK float64          `json:"allocRatioTopK"`
	Batch          []topkBatchPoint `json:"batch"`
}

// topkExperiment measures EvaluateTopK against the frozen reference and the
// /v1/batch endpoint's per-query amortization, and enforces the acceptance
// bars.  A violation exits nonzero so CI can gate on it.
func topkExperiment(docs int, seed int64, out string, minSpeedup, minAllocRatio float64) {
	fmt.Println("=== Top-k: incremental heap + banded streams vs frozen reference ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 5000})
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Parse("//inproceedings//article")
	if err != nil {
		log.Fatal(err)
	}
	ev := &query.Evaluator{Index: ix}
	const k = 10

	// Correctness before speed: the optimized path must return exactly the
	// first k of the reference evaluator's full deterministic ranking.
	got := ev.EvaluateTopK(q, k)
	full := ev.ReferenceEvaluate(q)
	want := full
	if len(want) > k {
		want = want[:k]
	}
	if len(got) != len(want) {
		log.Fatalf("correctness: EvaluateTopK returned %d results, reference prefix has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("correctness: result %d = %+v, reference %+v", i, got[i], want[i])
		}
	}

	measure := func(name string, op func()) hotpathCase {
		for i := 0; i < 3; i++ {
			op() // warm the scratch pool and lazily built index state
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		c := hotpathCase{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Printf("%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		return c
	}

	cases := []hotpathCase{
		measure("topk", func() { ev.EvaluateTopK(q, k) }),
		measure("reference-topk", func() { ev.ReferenceEvaluateTopK(q, k) }),
	}
	byName := map[string]hotpathCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}
	r := topkResult{
		Experiment: "topk",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
		Cases:      cases,
		SpeedupTopK: float64(byName["reference-topk"].NsPerOp) /
			float64(byName["topk"].NsPerOp),
	}
	if a := byName["topk"].AllocsPerOp; a > 0 {
		r.AllocRatioTopK = float64(byName["reference-topk"].AllocsPerOp) / float64(a)
	} else {
		r.AllocRatioTopK = float64(byName["reference-topk"].AllocsPerOp)
	}
	fmt.Printf("speedup vs reference: %.2fx latency, %.2fx allocations\n",
		r.SpeedupTopK, r.AllocRatioTopK)

	r.Batch = batchThroughput(ix, e.Coll.NumNodes(), seed)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)

	if minSpeedup > 0 && r.SpeedupTopK < minSpeedup {
		log.Fatalf("acceptance: topk speedup %.2fx below the %.2fx bar", r.SpeedupTopK, minSpeedup)
	}
	if minAllocRatio > 0 && r.AllocRatioTopK < minAllocRatio {
		log.Fatalf("acceptance: topk allocation ratio %.2fx below the %.2fx bar",
			r.AllocRatioTopK, minAllocRatio)
	}
	fmt.Println()
}

// batchThroughput measures per-query latency through POST /v1/batch at
// growing batch sizes over real HTTP: the admission, parsing and transport
// overhead amortizes across the batch, so ns/query should fall as the size
// grows.
func batchThroughput(ix *flix.Index, numNodes int, seed int64) []topkBatchPoint {
	s := server.New(ix, server.Config{MaxBatch: 1024, MaxTimeout: 5 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A fixed pool of start nodes: repeats hit the query cache, fresh
	// starts miss — the mixed workload the cache-aware ordering targets.
	rng := rand.New(rand.NewSource(seed))
	starts := make([]int, 64)
	for i := range starts {
		starts[i] = rng.Intn(numNodes)
	}
	post := func(body []byte) {
		resp, err := http.Post(ts.URL+"/v1/batch?timeout=5m", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var br shard.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || br.Partial {
			log.Fatalf("batch benchmark: status %d partial %v", resp.StatusCode, br.Partial)
		}
	}

	var points []topkBatchPoint
	for _, size := range []int{1, 16, 256} {
		req := shard.BatchRequest{K: 10}
		for i := 0; i < size; i++ {
			req.Queries = append(req.Queries, shard.BatchQuery{
				Start: fmt.Sprint(starts[i%len(starts)]),
				Tag:   "article",
			})
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		rounds := 512 / size
		if rounds < 4 {
			rounds = 4
		}
		post(body) // warm
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			post(body)
		}
		elapsed := time.Since(t0)
		queries := int64(rounds * size)
		pt := topkBatchPoint{
			Size:          size,
			NsPerQuery:    elapsed.Nanoseconds() / queries,
			QueriesPerSec: float64(queries) / elapsed.Seconds(),
		}
		fmt.Printf("batch size %4d %12d ns/query %12.0f queries/sec\n",
			pt.Size, pt.NsPerQuery, pt.QueriesPerSec)
		points = append(points, pt)
	}
	return points
}
