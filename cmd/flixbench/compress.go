package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

// compressSection is one row of the per-kind storage breakdown.
type compressSection struct {
	Kind     string  `json:"kind"`
	Sections int     `json:"sections"`
	Bytes    int64   `json:"bytes"`
	RawBytes int64   `json:"rawBytes,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
}

// compressResult is the machine-readable record of the compress
// experiment, written to BENCH_compress.json: sizes of all three persisted
// forms, the per-section-kind breakdown of the compressed container, open
// times, and the query hot path served from the heap build vs the raw and
// the compressed mapping.
type compressResult struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`

	V1Bytes  int64 `json:"v1Bytes"`
	V2Bytes  int64 `json:"v2Bytes"`
	V2CBytes int64 `json:"v2cBytes"`
	// SizeRatioV2 is v2Bytes / v2cBytes — the tentpole acceptance metric
	// (how much the compressed encodings shave off the raw container).
	// SizeRatioV1 relates the compressed container to the varint v1 stream.
	SizeRatioV2 float64 `json:"sizeRatioV2"`
	SizeRatioV1 float64 `json:"sizeRatioV1"`

	Sections []compressSection `json:"sections"`

	V2OpenNs  int64 `json:"v2OpenNs"`
	V2COpenNs int64 `json:"v2cOpenNs"`

	Cases []hotpathCase `json:"cases"`
	// LatencyRatio is compressed-mapped descendants ns/op over raw-mapped
	// descendants ns/op: the probe-time price of the succinct encodings.
	LatencyRatio float64 `json:"latencyRatio"`
}

// compressExperiment measures the compressed v2 sections end to end —
// persist raw and compressed containers, verify the three backends answer
// identically, then benchmark the hot path on all of them — and enforces
// the acceptance bars: the compressed container must be at least minRatio
// times smaller than the raw v2 one, mapped compressed probes may cost at
// most maxLatency of the raw-mapped ones, and they must not allocate.  A
// violation exits nonzero so CI can gate on it.
func compressExperiment(docs int, seed int64, out string, minRatio, maxLatency float64) {
	fmt.Println("=== Snapshot v2: compressed sections ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 5000})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "flixbench-compress-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	v1Path := filepath.Join(dir, "gen-000001.flix")
	v2Path := filepath.Join(dir, "gen-000002.flix")
	v2cPath := filepath.Join(dir, "gen-000003.flix")
	writeWith := func(path string, write func(*os.File) error) int64 {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		return fi.Size()
	}
	r := compressResult{
		Experiment: "compress",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
	}
	r.V1Bytes = writeWith(v1Path, func(f *os.File) error { _, err := ix.WriteTo(f); return err })
	r.V2Bytes = writeWith(v2Path, func(f *os.File) error { _, err := ix.WriteSnapshotV2(f); return err })
	r.V2CBytes = writeWith(v2cPath, func(f *os.File) error {
		_, err := ix.WriteSnapshotV2With(f, flix.SnapshotV2Options{Compress: true})
		return err
	})
	r.SizeRatioV2 = float64(r.V2Bytes) / float64(r.V2CBytes)
	r.SizeRatioV1 = float64(r.V1Bytes) / float64(r.V2CBytes)
	fmt.Printf("snapshot size: v1 %s, v2 raw %s, v2 compressed %s (%.2fx vs raw v2, %.2fx vs v1)\n",
		bench.FormatBytes(r.V1Bytes), bench.FormatBytes(r.V2Bytes), bench.FormatBytes(r.V2CBytes),
		r.SizeRatioV2, r.SizeRatioV1)

	timeOpen := func(path string) int64 {
		best := int64(0)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			lx, err := flix.OpenSnapshot(e.Coll, path)
			el := time.Since(t0).Nanoseconds()
			if err != nil {
				log.Fatal(err)
			}
			lx.Close()
			if best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	r.V2OpenNs = timeOpen(v2Path)
	r.V2COpenNs = timeOpen(v2cPath)
	fmt.Printf("mmap open: raw %s, compressed %s\n",
		time.Duration(r.V2OpenNs).Round(time.Microsecond),
		time.Duration(r.V2COpenNs).Round(time.Microsecond))

	rawIx, err := flix.OpenSnapshot(e.Coll, v2Path)
	if err != nil {
		log.Fatal(err)
	}
	defer rawIx.Close()
	compIx, err := flix.OpenSnapshot(e.Coll, v2cPath)
	if err != nil {
		log.Fatal(err)
	}
	defer compIx.Close()

	si := compIx.StorageInfo()
	if !si.Compressed {
		log.Fatal("acceptance: compressed snapshot opened with StorageInfo.Compressed = false")
	}
	for _, st := range si.Sections {
		r.Sections = append(r.Sections, compressSection{
			Kind: st.Kind, Sections: st.Sections, Bytes: st.Bytes, RawBytes: st.RawBytes, Ratio: st.Ratio,
		})
		line := fmt.Sprintf("  section %-8s ×%-4d %10s", st.Kind, st.Sections, bench.FormatBytes(st.Bytes))
		if st.RawBytes > 0 {
			line += fmt.Sprintf("  (raw %s, %.2fx)", bench.FormatBytes(st.RawBytes), st.Ratio)
		}
		fmt.Println(line)
	}

	// Differential check before timing anything: the heap build, the raw
	// mapping and the compressed mapping must answer identically.
	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}
	step := e.Coll.NumNodes()/97 + 1
	for s := 0; s < e.Coll.NumNodes(); s += step {
		start := xmlgraph.NodeID(s)
		for _, tag := range []string{"article", "author", ""} {
			var hb, rb, cb []byte
			for _, x := range []struct {
				ix *flix.Index
				b  *[]byte
			}{{ix, &hb}, {rawIx, &rb}, {compIx, &cb}} {
				buf := []byte{}
				x.ix.Descendants(start, tag, flix.Options{MaxResults: 20}, func(res flix.Result) bool {
					buf = append(buf, byte(res.Node), byte(res.Node>>8), byte(res.Node>>16), byte(res.Dist))
					return true
				})
				*x.b = buf
			}
			if string(hb) != string(rb) || string(hb) != string(cb) {
				log.Fatalf("acceptance: backends diverge at start %d tag %q", s, tag)
			}
		}
	}
	fmt.Println("differential parity: heap == mapped-raw == mapped-compressed")

	connTarget := xmlgraph.NodeID((int(e.Start) + 1000) % e.Coll.NumNodes())
	measure := func(name string, op func()) hotpathCase {
		for i := 0; i < 3; i++ {
			op() // warm pools, tag postings, lazy structures
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		c := hotpathCase{
			Name:        name,
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		fmt.Printf("%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		return c
	}
	cases := []hotpathCase{
		measure("descendants-heap", func() {
			ix.Descendants(e.Start, "article", opts, drop)
		}),
		measure("descendants-mmap-raw", func() {
			rawIx.Descendants(e.Start, "article", opts, drop)
		}),
		measure("descendants-mmap-comp", func() {
			compIx.Descendants(e.Start, "article", opts, drop)
		}),
		measure("connected-mmap-raw", func() {
			rawIx.Connected(e.Start, connTarget, 0)
		}),
		measure("connected-mmap-comp", func() {
			compIx.Connected(e.Start, connTarget, 0)
		}),
	}
	r.Cases = cases
	byName := map[string]hotpathCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}
	r.LatencyRatio = float64(byName["descendants-mmap-comp"].NsPerOp) /
		float64(byName["descendants-mmap-raw"].NsPerOp)
	fmt.Printf("query ns/op compressed/raw ratio: %.2f\n", r.LatencyRatio)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)

	if minRatio > 0 && r.SizeRatioV2 < minRatio {
		log.Fatalf("acceptance: compressed container is only %.2fx smaller than raw v2 (bar %.1fx)",
			r.SizeRatioV2, minRatio)
	}
	if maxLatency > 0 && r.LatencyRatio > maxLatency {
		log.Fatalf("acceptance: compressed probes cost %.2fx the raw-mapped ones (bar %.2fx)",
			r.LatencyRatio, maxLatency)
	}
	for _, name := range []string{"descendants-mmap-comp", "connected-mmap-comp"} {
		if a := byName[name].AllocsPerOp; a != 0 {
			log.Fatalf("acceptance: %s allocated %d allocs/op, want 0", name, a)
		}
	}
	fmt.Println()
}
