// Command flixbench regenerates the evaluation of the FliX paper (§6) on
// the synthetic DBLP collection: Table 1 (index sizes), Figure 5 (time to
// return the first k results of an a//b query), the in-text result-order
// error rates, and the connection-test comparison.  EXPERIMENTS.md records
// a reference run next to the paper's numbers.
//
// Usage:
//
//	flixbench [-docs 6210] [-seed 42] [-exp all|table1|figure5|errors|conn|scale|hetero|serving|build|swap|hotpath|shard|dtrace|topk|mmap|compress]
//
// The scale and hetero experiments go beyond the paper's evaluation and
// cover its §7 future work: scalability with growing collections and
// adaptivity on a heterogeneous collection (deep trees + citations + a
// densely linked Web-like region).  The swap experiment measures the live
// reindexing hot-swap: client-observed latency while index generations are
// replaced under load, every response checked against the BFS oracle.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/xmlgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flixbench: ")
	docs := flag.Int("docs", 6210, "number of publication documents (paper: 6210)")
	seed := flag.Int64("seed", 42, "generator seed")
	exp := flag.String("exp", "all", "experiment: all | table1 | figure5 | errors | conn | scale | hetero | serving | build | swap | hotpath | shard | dtrace | topk | mmap | compress")
	pairs := flag.Int("pairs", 200, "connection-test pairs")
	closure := flag.Bool("closure", false, "also build the full transitive closure as the Table 1 size reference (slow)")
	servingOut := flag.String("serving-out", "BENCH_serving.json", "output file for the serving experiment's machine-readable results")
	buildOut := flag.String("build-out", "BENCH_build.json", "output file for the build experiment's machine-readable results")
	swapOut := flag.String("swap-out", "BENCH_swap.json", "output file for the swap experiment's machine-readable results")
	swapN := flag.Int("swaps", 5, "hot-swaps to fire during the swap experiment")
	swapWorkers := flag.Int("swap-workers", 0, "concurrent query workers in the swap experiment (0 = scale with CPUs)")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "output file for the hotpath experiment's machine-readable results")
	hotpathSpeedup := flag.Float64("hotpath-speedup", 1.3, "minimum descendants speedup over the reference evaluator the hotpath experiment accepts (0 disables)")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "output file for the shard experiment's machine-readable results")
	dtraceOut := flag.String("dtrace-out", "BENCH_dtrace.json", "output file for the dtrace experiment's machine-readable results")
	topkOut := flag.String("topk-out", "BENCH_topk.json", "output file for the topk experiment's machine-readable results")
	topkSpeedup := flag.Float64("topk-speedup", 10, "minimum top-k latency speedup over the frozen reference the topk experiment accepts (0 disables)")
	topkAllocRatio := flag.Float64("topk-alloc-ratio", 10, "minimum top-k allocation reduction over the frozen reference the topk experiment accepts (0 disables)")
	mmapOut := flag.String("mmap-out", "BENCH_mmap.json", "output file for the mmap experiment's machine-readable results")
	mmapOverhead := flag.Float64("mmap-overhead", 0.5, "maximum fraction of the shared decomposition time the v2 open may add on top (0 disables; the v1 parse typically adds far more)")
	compressOut := flag.String("compress-out", "BENCH_compress.json", "output file for the compress experiment's machine-readable results")
	compressRatio := flag.Float64("compress-ratio", 4, "minimum size reduction over the raw v2 container the compress experiment accepts (0 disables)")
	compressLatency := flag.Float64("compress-latency", 1.3, "maximum mapped-probe latency ratio (compressed over raw) the compress experiment accepts (0 disables)")
	flag.Parse()

	run := map[string]bool{}
	if *exp == "all" {
		for _, x := range []string{"table1", "figure5", "errors", "conn"} {
			run[x] = true
		}
	} else {
		run[*exp] = true
	}

	// The scale, hetero and serving experiments build their own collections.
	if run["scale"] {
		scaleExperiment(*seed)
	}
	if run["hetero"] {
		heteroExperiment(*seed)
	}
	if run["serving"] {
		servingExperiment(*docs, *seed, *servingOut)
	}
	if run["build"] {
		buildExperiment(*docs, *seed, *buildOut)
	}
	if run["swap"] {
		swapExperiment(*docs, *seed, *swapOut, *swapN, *swapWorkers)
	}
	if run["hotpath"] {
		hotpathExperiment(*docs, *seed, *hotpathOut, *hotpathSpeedup)
	}
	if run["shard"] {
		shardExperiment(*docs, *seed, *shardOut)
	}
	if run["dtrace"] {
		dtraceExperiment(*docs, *seed, *dtraceOut)
	}
	if run["topk"] {
		topkExperiment(*docs, *seed, *topkOut, *topkSpeedup, *topkAllocRatio)
	}
	if run["mmap"] {
		mmapExperiment(*docs, *seed, *mmapOut, *mmapOverhead)
	}
	if run["compress"] {
		compressExperiment(*docs, *seed, *compressOut, *compressRatio, *compressLatency)
	}
	if !run["table1"] && !run["figure5"] && !run["errors"] && !run["conn"] {
		return
	}

	p := dblp.DefaultParams()
	p.Docs = *docs
	p.Seed = *seed
	fmt.Printf("generating collection (docs=%d seed=%d)...\n", p.Docs, p.Seed)
	e := bench.NewExperiment(p)
	st := xmlgraph.ComputeStats(e.Coll)
	fmt.Printf("collection: %d documents, %d elements, %d links (paper: 6210 / 168991 / 25368)\n\n",
		st.Docs, st.Nodes, st.Links)

	fmt.Println("building all strategies...")
	built, err := e.BuildAll(bench.PaperStrategies())
	if err != nil {
		log.Fatal(err)
	}

	if run["table1"] {
		table1(e, built, *closure)
	}
	if run["figure5"] {
		figure5(e, built)
	}
	if run["errors"] {
		errorRates(e, built)
	}
	if run["conn"] {
		connTest(e, built, *pairs)
	}
}

// scaleExperiment measures build time, size and query time as the
// collection grows (§7: "test the scalability of FliX with larger sets of
// documents").
func scaleExperiment(seed int64) {
	fmt.Println("=== Scalability: collection size sweep ===")
	fmt.Printf("%8s %10s | %12s %12s %10s | %12s %12s %10s\n",
		"docs", "elements", "hybrid-build", "hybrid-size", "hybrid-q100",
		"hopi-build", "hopi-size", "hopi-q100")
	for _, docs := range []int{1000, 2000, 4000, 6210, 12420} {
		p := dblp.DefaultParams()
		p.Docs = docs
		p.Seed = seed
		e := bench.NewExperiment(p)
		row := fmt.Sprintf("%8d %10d |", docs, e.Coll.NumNodes())
		for _, en := range []bench.Entry{
			{Label: "hybrid", Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}},
			{Label: "hopi", Config: flix.Config{Kind: flix.Monolithic, Strategy: "hopi"}},
		} {
			built, err := e.BuildAll([]bench.Entry{en})
			if err != nil {
				log.Fatal(err)
			}
			sz, err := built[0].Index.SizeBytes()
			if err != nil {
				log.Fatal(err)
			}
			bench.QueryTimeSeries(built[0], e.Start, "article", 100) // warm
			ts := bench.QueryTimeSeries(built[0], e.Start, "article", 100)
			row += fmt.Sprintf(" %12s %12s %10s |",
				built[0].BuildTime.Round(time.Millisecond),
				bench.FormatBytes(sz), ts.Total.Round(time.Microsecond))
		}
		fmt.Println(row)
	}
	fmt.Println()
}

// heteroExperiment measures adaptivity on a mixed collection (§7: "test
// the adaptivity of FliX with more heterogeneous document collections"):
// the Hybrid configuration should assign different strategies to different
// regions and be competitive in each, where single-strategy configurations
// win only on "their" region.
func heteroExperiment(seed int64) {
	fmt.Println("=== Adaptivity: heterogeneous collection ===")
	m := bench.MixedCollection(seed, 2)
	fmt.Println("collection:", xmlgraph.ComputeStats(m.Coll))
	for _, r := range m.Regions {
		fmt.Printf("  region %-16s docs %d..%d\n", r.Name, r.FirstDoc, r.LastDoc-1)
	}
	fmt.Println()
	entries := []bench.Entry{
		{Label: "PPO-naive", Config: flix.Config{Kind: flix.Naive}},
		{Label: "MaximalPPO", Config: flix.Config{Kind: flix.MaximalPPO}},
		{Label: "HOPI-5000", Config: flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}},
		{Label: "Hybrid", Config: flix.Config{Kind: flix.Hybrid, PartitionSize: 5000}},
		{Label: "ElementLevel", Config: flix.Config{Kind: flix.ElementLevel, PartitionSize: 5000}},
		{Label: "HOPI", Config: flix.Config{Kind: flix.Monolithic, Strategy: "hopi"}},
	}
	fmt.Printf("%-14s %10s %10s %-28s", "config", "build", "size", "strategies")
	for _, r := range m.Regions {
		fmt.Printf(" %14s", r.Name)
	}
	fmt.Println()
	for _, en := range entries {
		t0 := time.Now()
		ix, err := flix.Build(m.Coll, en.Config)
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(t0)
		sz, err := ix.SizeBytes()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10s %10s %-28s", en.Label,
			buildTime.Round(time.Millisecond), bench.FormatBytes(sz), formatCounts(ix.StrategyCounts()))
		for _, r := range m.Regions {
			// Warm, then time a bounded per-region query.
			runQ := func() time.Duration {
				t0 := time.Now()
				n := 0
				ix.Descendants(r.Start, r.Tag, flix.Options{MaxResults: 100}, func(flix.Result) bool {
					n++
					return true
				})
				return time.Since(t0)
			}
			runQ()
			fmt.Printf(" %14s", runQ().Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println()
}

// formatCounts renders a strategy-count map compactly ("ppo×803 hopi×5").
func formatCounts(counts map[string]int) string {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s×%d", n, counts[n])
	}
	return s
}

func table1(e *bench.Experiment, built []bench.Built, closure bool) {
	fmt.Println("=== Table 1: index sizes ===")
	rows, err := bench.IndexSizes(built)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSizeTable(rows))
	if !closure {
		fmt.Println("(run with -closure to add the transitive-closure size reference)")
		fmt.Println()
		return
	}
	// The transitive-closure reference point: the paper notes HOPI stays
	// more than an order of magnitude below the closure.
	fmt.Println("building transitive closure for reference (this is the expensive baseline)...")
	t0 := time.Now()
	tcIx, err := flix.Build(e.Coll, flix.Config{Kind: flix.Monolithic, Strategy: "tc"})
	if err != nil {
		log.Fatal(err)
	}
	sz, err := tcIx.SizeBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s %6d\n\n", "closure", bench.FormatBytes(sz),
		time.Since(t0).Round(time.Millisecond), 1)
}

func figure5(e *bench.Experiment, built []bench.Built) {
	fmt.Println("=== Figure 5: time to return the first k results of start//article ===")
	fmt.Printf("start element: %s\n", e.Corpus.Pubs[e.Corpus.HubIndex].Key)
	counts := []int{1, 2, 5, 10, 20, 50, 100}
	var series []bench.TimeSeries
	for _, b := range built {
		// Warm run first: the paper's DB-backed setup reports warm
		// caches too; this also populates HOPI's per-tag postings.
		bench.QueryTimeSeries(b, e.Start, "article", 100)
		series = append(series, bench.QueryTimeSeries(b, e.Start, "article", 100))
	}
	fmt.Print(bench.FormatFigure5(series, counts))
	fmt.Println()

	fmt.Println("same query, all results:")
	var all []bench.TimeSeries
	for _, b := range built {
		all = append(all, bench.QueryTimeSeries(b, e.Start, "article", 0))
	}
	fmt.Print(bench.FormatFigure5(all, []int{1, 100, 1000}))
	fmt.Println()
}

func errorRates(e *bench.Experiment, built []bench.Built) {
	fmt.Println("=== Result-order error rates (paper: HOPI-5000 8.2%, HOPI-20000 10.4%, MaximalPPO 13.3%) ===")
	oracle := bench.OracleDistances(e.Coll, e.Start, "article")
	for _, b := range built {
		ts := bench.QueryTimeSeries(b, e.Start, "article", 0)
		rate := bench.ErrorRate(ts.Results, oracle)
		fmt.Printf("%-12s %6.1f%%  (%d results)\n", b.Entry.Label, 100*rate, len(ts.Results))
	}
	fmt.Println()
}

func connTest(e *bench.Experiment, built []bench.Built, pairs int) {
	fmt.Println("=== Connection tests ===")
	fmt.Printf("%-12s %8s %10s %14s %14s\n", "index", "pairs", "connected", "forward", "bidirectional")
	for _, b := range built {
		row := bench.ConnectionTest(b, e.Coll, e.Start, pairs)
		fmt.Printf("%-12s %8d %10d %14s %14s\n", row.Label, row.Pairs, row.Connected,
			row.Forward.Round(time.Microsecond), row.Bidirectional.Round(time.Microsecond))
	}
	fmt.Println()
}
