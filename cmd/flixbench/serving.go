package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/obs"
)

// servingResult is the machine-readable record of the serving experiment,
// written to BENCH_serving.json so CI and EXPERIMENTS.md can track the
// query-path throughput and the cost of tracing over time.
type servingResult struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`
	Queries    int    `json:"queries"`
	// NsPerOp is the mean untraced query latency; TracedNsPerOp the same
	// with a tracer attached.  Their ratio bounds the cost of the
	// always-compiled-in trace hooks (nil-check fast path when untraced).
	NsPerOp          int64   `json:"nsPerOp"`
	TracedNsPerOp    int64   `json:"tracedNsPerOp"`
	TraceOverheadPct float64 `json:"traceOverheadPct"`
	ResultsPerQuery  float64 `json:"resultsPerQuery"`
	ResultsPerSec    float64 `json:"resultsPerSec"`
	LinkHopsPerQuery float64 `json:"linkHopsPerQuery"`
	PopsPerQuery     float64 `json:"popsPerQuery"`
}

// servingExperiment measures the serving-path metrics on the synthetic DBLP
// collection: query latency with and without tracing, result throughput,
// and the per-query engine effort (pops, link hops).
func servingExperiment(docs int, seed int64, out string) {
	fmt.Println("=== Serving: query latency and tracing overhead ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 5000})
	if err != nil {
		log.Fatal(err)
	}

	const queries = 200
	run := func(tr bool) (nsPerOp int64, results int64) {
		before := ix.Stats().Snapshot()
		t0 := time.Now()
		for i := 0; i < queries; i++ {
			opts := flix.Options{MaxResults: 100}
			if tr {
				opts.Tracer = obs.NewTrace(256)
			}
			ix.Descendants(e.Start, "article", opts, func(flix.Result) bool { return true })
		}
		elapsed := time.Since(t0)
		after := ix.Stats().Snapshot()
		return elapsed.Nanoseconds() / queries, after.Results - before.Results
	}
	run(false) // warm: populates per-tag postings and the page cache

	nsPlain, results := run(false)
	nsTraced, _ := run(true)
	before := ix.Stats().Snapshot()
	run(false)
	after := ix.Stats().Snapshot()

	r := servingResult{
		Experiment:       "serving",
		Config:           ix.Config().Kind.String(),
		Docs:             e.Coll.NumDocs(),
		Elements:         e.Coll.NumNodes(),
		Queries:          queries,
		NsPerOp:          nsPlain,
		TracedNsPerOp:    nsTraced,
		TraceOverheadPct: 100 * (float64(nsTraced) - float64(nsPlain)) / float64(nsPlain),
		ResultsPerQuery:  float64(results) / queries,
		ResultsPerSec:    float64(results) / (float64(nsPlain*queries) / 1e9),
		LinkHopsPerQuery: float64(after.LinkHops-before.LinkHops) / queries,
		PopsPerQuery:     float64(after.Pops-before.Pops) / queries,
	}
	fmt.Printf("%d queries: %s/op untraced, %s/op traced (%+.1f%%), %.1f results/query, %.0f results/sec, %.1f link hops/query\n\n",
		queries, time.Duration(r.NsPerOp), time.Duration(r.TracedNsPerOp),
		r.TraceOverheadPct, r.ResultsPerQuery, r.ResultsPerSec, r.LinkHopsPerQuery)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
