package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/meta"
	"repro/internal/partition"
	"repro/internal/xmlgraph"
)

// mmapResult is the machine-readable record of the mmap experiment,
// written to BENCH_mmap.json: warm-start latency of the v1 parse path vs
// the v2 mmap path on the same index, file sizes of both formats, and the
// query hot path served from the heap build vs the mapped snapshot.
type mmapResult struct {
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`

	V1Bytes int64 `json:"v1Bytes"`
	V2Bytes int64 `json:"v2Bytes"`

	// Warm-start wall time (best of several runs): parsing the v1 stream
	// vs opening the v2 container memory-mapped.  Both paths recompute the
	// meta-document decomposition from the collection (that cost is common
	// and bounds the end-to-end ratio); the v2 gain is the eliminated
	// parse/decode of every per-meta-document index, reported separately
	// as the *OnlyNs pair.
	V1LoadNs    int64 `json:"v1LoadNs"`
	V2OpenNs    int64 `json:"v2OpenNs"`
	DecomposeNs int64 `json:"decomposeNs"`
	// WarmStartSpeedup is v1LoadNs / v2OpenNs end to end.  The overhead
	// fractions are (loadNs - decomposeNs) / decomposeNs, clamped at 0:
	// what each format adds on top of the unavoidable decomposition.  The
	// tentpole acceptance metric is V2OverheadFrac — a v2 open with no
	// parse step is indistinguishable from the bare decomposition, while
	// the v1 parse adds a measurable chunk.
	WarmStartSpeedup float64 `json:"warmStartSpeedup"`
	V1OverheadFrac   float64 `json:"v1OverheadFrac"`
	V2OverheadFrac   float64 `json:"v2OverheadFrac"`

	Cases []hotpathCase `json:"cases"`
	// QueryRatioMmap is heap descendants ns/op divided by mmap descendants
	// ns/op (≈1.0 means serving from the mapping costs nothing).
	QueryRatioMmap float64 `json:"queryRatioMmap"`
}

// mmapExperiment measures the v2 snapshot path end to end — persist both
// formats, time warm start for each, then benchmark the query hot path on
// the heap-built and the mmap-backed index — and enforces the acceptance
// bars: the v2 open must beat the v1 parse end to end, must add at most
// maxOverhead on top of the bare decomposition (proving there is no parse
// step), and the mapped hot path must not allocate.  A violation exits
// nonzero so CI can gate on it.
func mmapExperiment(docs int, seed int64, out string, maxOverhead float64) {
	fmt.Println("=== Snapshot v2: warm start and mmap-backed serving ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 5000})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "flixbench-mmap-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	v1Path := filepath.Join(dir, "gen-000001.flix")
	v2Path := filepath.Join(dir, "gen-000002.flix")
	writeWith := func(path string, write func(*os.File) error) int64 {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		return fi.Size()
	}
	r := mmapResult{
		Experiment: "mmap",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
	}
	r.V1Bytes = writeWith(v1Path, func(f *os.File) error { _, err := ix.WriteTo(f); return err })
	r.V2Bytes = writeWith(v2Path, func(f *os.File) error { _, err := ix.WriteSnapshotV2(f); return err })
	fmt.Printf("snapshot size: v1 %s, v2 %s\n", bench.FormatBytes(r.V1Bytes), bench.FormatBytes(r.V2Bytes))

	// Warm start: best of several runs, so page-cache effects favour
	// neither side (both files were just written).
	timeLoad := func(path string, useMmap bool) int64 {
		best := int64(0)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			lx, err := flix.LoadSnapshotFile(e.Coll, path, useMmap)
			el := time.Since(t0).Nanoseconds()
			if err != nil {
				log.Fatal(err)
			}
			lx.Close()
			if best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	r.V1LoadNs = timeLoad(v1Path, false)
	r.V2OpenNs = timeLoad(v2Path, true)
	r.WarmStartSpeedup = float64(r.V1LoadNs) / float64(r.V2OpenNs)
	// The decomposition both loaders recompute, timed on its own so the
	// per-format cost (parse vs map) can be isolated from it.
	cfg := ix.Config()
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		meta.Build(e.Coll, partition.Hybrid(e.Coll, cfg.PartitionSize, cfg.MinTreeDocs))
		if el := time.Since(t0).Nanoseconds(); r.DecomposeNs == 0 || el < r.DecomposeNs {
			r.DecomposeNs = el
		}
	}
	overhead := func(loadNs int64) float64 {
		f := float64(loadNs-r.DecomposeNs) / float64(r.DecomposeNs)
		return max(f, 0)
	}
	r.V1OverheadFrac = overhead(r.V1LoadNs)
	r.V2OverheadFrac = overhead(r.V2OpenNs)
	fmt.Printf("warm start: v1 parse %s, v2 mmap open %s (%.1fx end to end)\n",
		time.Duration(r.V1LoadNs).Round(time.Microsecond),
		time.Duration(r.V2OpenNs).Round(time.Microsecond), r.WarmStartSpeedup)
	fmt.Printf("  shared decomposition %s; added on top: v1 parse +%.0f%%, v2 open +%.0f%%\n",
		time.Duration(r.DecomposeNs).Round(time.Microsecond),
		100*r.V1OverheadFrac, 100*r.V2OverheadFrac)

	mx, err := flix.OpenSnapshot(e.Coll, v2Path)
	if err != nil {
		log.Fatal(err)
	}
	defer mx.Close()
	si := mx.StorageInfo()
	fmt.Printf("serving storage: format=%s mapped=%v mappedBytes=%d\n", si.Format, si.Mapped, si.MappedBytes)

	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}
	connTarget := xmlgraph.NodeID((int(e.Start) + 1000) % e.Coll.NumNodes())
	measure := func(name string, op func()) hotpathCase {
		for i := 0; i < 3; i++ {
			op() // warm pools, tag postings, lazy structures
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		c := hotpathCase{
			Name:        name,
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		fmt.Printf("%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		return c
	}
	cases := []hotpathCase{
		measure("descendants-heap", func() {
			ix.Descendants(e.Start, "article", opts, drop)
		}),
		measure("descendants-mmap", func() {
			mx.Descendants(e.Start, "article", opts, drop)
		}),
		measure("connected-heap", func() {
			ix.Connected(e.Start, connTarget, 0)
		}),
		measure("connected-mmap", func() {
			mx.Connected(e.Start, connTarget, 0)
		}),
	}
	r.Cases = cases
	byName := map[string]hotpathCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}
	r.QueryRatioMmap = float64(byName["descendants-heap"].NsPerOp) /
		float64(byName["descendants-mmap"].NsPerOp)
	fmt.Printf("query ns/op heap/mmap ratio: %.2f\n", r.QueryRatioMmap)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)

	if a := byName["descendants-mmap"].AllocsPerOp; a != 0 {
		log.Fatalf("acceptance: mmap-backed descendants allocated %d allocs/op, want 0", a)
	}
	if r.WarmStartSpeedup < 1 {
		log.Fatalf("acceptance: v2 warm start (%s) is slower end to end than the v1 parse (%s)",
			time.Duration(r.V2OpenNs), time.Duration(r.V1LoadNs))
	}
	if maxOverhead > 0 && r.V2OverheadFrac > maxOverhead {
		log.Fatalf("acceptance: v2 open adds %.0f%% on top of the decomposition (bar %.0f%%) — a parse step crept in",
			100*r.V2OverheadFrac, 100*maxOverhead)
	}
	fmt.Println()
}
