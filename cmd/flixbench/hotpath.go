package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/query"
)

// hotpathCase is one measured workload of the hot-path experiment.
type hotpathCase struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"nsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
}

// hotpathResult is the machine-readable record of the hot-path experiment,
// written to BENCH_hotpath.json.  The reference-* cases run the frozen
// pre-optimization evaluator (flix.ReferenceDescendants and friends) in the
// same binary on the same collection, so the before/after comparison needs
// no cross-commit bookkeeping: the speedups are computed from numbers
// captured in the same file.
type hotpathResult struct {
	Experiment string        `json:"experiment"`
	Config     string        `json:"config"`
	Docs       int           `json:"docs"`
	Elements   int           `json:"elements"`
	Cases      []hotpathCase `json:"cases"`
	// SpeedupDescendants is reference-descendants ns/op divided by
	// descendants ns/op — the tentpole acceptance metric.
	SpeedupDescendants     float64 `json:"speedupDescendants"`
	SpeedupTypeDescendants float64 `json:"speedupTypeDescendants"`
}

// hotpathExperiment measures the allocation behaviour and latency of the
// query hot path via testing.Benchmark, compares against the frozen
// reference evaluator, and enforces the acceptance bar: zero allocs/op for
// untraced steady-state descendants on a warm scratch pool, and at least
// minSpeedup over the reference.  A violation exits nonzero so CI can gate
// on it.
func hotpathExperiment(docs int, seed int64, out string, minSpeedup float64) {
	fmt.Println("=== Hot path: steady-state allocations and latency ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 5000})
	if err != nil {
		log.Fatal(err)
	}
	drop := func(flix.Result) bool { return true }
	opts := flix.Options{MaxResults: 100}

	q, err := query.Parse("//inproceedings//article")
	if err != nil {
		log.Fatal(err)
	}
	ev := &query.Evaluator{Index: ix}

	measure := func(name string, op func()) hotpathCase {
		// Warm: populates the scratch pool, HOPI's tag postings and any
		// lazily built state, so the benchmark sees the steady state.
		for i := 0; i < 3; i++ {
			op()
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		c := hotpathCase{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Printf("%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		return c
	}

	cases := []hotpathCase{
		measure("descendants", func() {
			ix.Descendants(e.Start, "article", opts, drop)
		}),
		measure("descendants-traced", func() {
			o := opts
			o.Tracer = obs.NewTrace(256)
			ix.Descendants(e.Start, "article", o, drop)
		}),
		measure("type-descendants", func() {
			ix.TypeDescendants("inproceedings", "article", opts, drop)
		}),
		measure("topk", func() {
			ev.EvaluateTopK(q, 10)
		}),
		measure("reference-descendants", func() {
			ix.ReferenceDescendants(e.Start, "article", opts, drop)
		}),
		measure("reference-type-descendants", func() {
			ix.ReferenceTypeDescendants("inproceedings", "article", opts, drop)
		}),
	}
	byName := map[string]hotpathCase{}
	for _, c := range cases {
		byName[c.Name] = c
	}
	r := hotpathResult{
		Experiment: "hotpath",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
		Cases:      cases,
		SpeedupDescendants: float64(byName["reference-descendants"].NsPerOp) /
			float64(byName["descendants"].NsPerOp),
		SpeedupTypeDescendants: float64(byName["reference-type-descendants"].NsPerOp) /
			float64(byName["type-descendants"].NsPerOp),
	}
	fmt.Printf("speedup vs reference: descendants %.2fx, type-descendants %.2fx\n",
		r.SpeedupDescendants, r.SpeedupTypeDescendants)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)

	if a := byName["descendants"].AllocsPerOp; a != 0 {
		log.Fatalf("acceptance: untraced descendants allocated %d allocs/op, want 0", a)
	}
	if minSpeedup > 0 && r.SpeedupDescendants < minSpeedup {
		log.Fatalf("acceptance: descendants speedup %.2fx below the %.2fx bar",
			r.SpeedupDescendants, minSpeedup)
	}
	fmt.Println()
}
