package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/xmlgraph"
)

// phaseLatency is one phase's latency summary in BENCH_swap.json.
type phaseLatency struct {
	Requests uint64 `json:"requests"`
	Mean     string `json:"mean"`
	P50      string `json:"p50"`
	P95      string `json:"p95"`
	P99      string `json:"p99"`
	P99Nanos int64  `json:"p99Nanos"`
}

// swapResult is the machine-readable record of the swap experiment: steady
// vs swap-phase client latency, every response verified against the BFS
// oracle, and the generation bookkeeping after the dust settles.
type swapResult struct {
	Experiment string `json:"experiment"`
	Docs       int    `json:"docs"`
	Elements   int    `json:"elements"`
	Workers    int    `json:"workers"`
	Swaps      int    `json:"swaps"`
	// Verified counts oracle-checked 200 responses; a single mismatch
	// fails the run with a non-zero exit.
	Verified        int64        `json:"verified"`
	Shed            int64        `json:"shed"`
	FinalGeneration uint64       `json:"finalGeneration"`
	Steady          phaseLatency `json:"steady"`
	SwapPhase       phaseLatency `json:"swapPhase"`
	// P99Ratio is swap-phase p99 over steady p99 — the headline number:
	// hot swaps must not disturb serving latency (target: <= 2x).
	P99Ratio    float64 `json:"p99Ratio"`
	WithinBound bool    `json:"withinBound"`
}

// swapSpec is one request with its oracle result set.
type swapSpec struct {
	url  string
	want map[xmlgraph.NodeID]int32
}

// swapExperiment serves the synthetic DBLP collection over HTTP, streams
// queries from concurrent workers, and hot-swaps the index generations
// while the load runs.  Every response is checked against the BFS oracle
// (any wrong result set is fatal), and the client-observed p99 during the
// swap phase is compared against the steady phase.
func swapExperiment(docs int, seed int64, out string, swaps, workers int) {
	fmt.Println("=== Swap: hot-swap latency under live load ===")
	if workers <= 0 {
		// Closed-loop workers generate queueing, not load, once they
		// outnumber the CPUs serving them; two per available core keeps
		// the tail measuring the swap, not the oversubscription.
		workers = runtime.NumCPU()
		if workers < 2 {
			workers = 2
		}
	}
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	coll := e.Coll
	fmt.Printf("collection: %d documents, %d elements\n", coll.NumDocs(), coll.NumNodes())

	cycle := []flix.Config{
		{Kind: flix.UnconnectedHOPI, PartitionSize: 5000},
		{Kind: flix.MaximalPPO},
		{Kind: flix.Hybrid, PartitionSize: 20000},
		{Kind: flix.Hybrid, PartitionSize: 5000},
	}
	ix, err := flix.BuildWithOptions(coll, cycle[len(cycle)-1], flix.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := server.New(ix, server.Config{
		MaxInFlight:    4 * workers,
		DefaultTimeout: 30 * time.Second,
		DefaultLimit:   1 << 20,
		MaxLimit:       1 << 20,
		CacheSize:      512,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := buildSwapSpecs(coll, e.Start, ts.URL)
	fmt.Printf("workload: %d oracle-checked descendants queries, %d workers\n", len(specs), workers)

	// phase 0 = warmup (discarded), 1 = steady, 2 = swapping; workers
	// bucket each request's client-observed latency by the phase it
	// started in.
	var (
		phase      atomic.Int32
		hists      [3]obs.Histogram
		verified   atomic.Int64
		shed       atomic.Int64
		mismatches atomic.Int64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := specs[(id+i)%len(specs)]
				ph := phase.Load()
				t0 := time.Now()
				resp, err := client.Get(spec.url)
				if err != nil {
					log.Printf("worker %d: %v", id, err)
					mismatches.Add(1)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					shed.Add(1)
					continue
				}
				var body struct {
					Results []struct {
						Node xmlgraph.NodeID `json:"node"`
						Dist int32           `json:"dist"`
					} `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				hists[ph].Observe(time.Since(t0))
				if err != nil || resp.StatusCode != http.StatusOK {
					log.Printf("worker %d: GET %s: status %d, decode err %v", id, spec.url, resp.StatusCode, err)
					mismatches.Add(1)
					return
				}
				if !verifySwapResponse(spec, body.Results) {
					log.Printf("worker %d: GET %s: result set does not match the oracle", id, spec.url)
					mismatches.Add(1)
					return
				}
				verified.Add(1)
			}
		}(w)
	}

	// Steady phase: let the workers settle, then collect a baseline.
	waitVerified := func(target int64, what string) {
		deadline := time.Now().Add(5 * time.Minute)
		for verified.Load() < target {
			if time.Now().After(deadline) || mismatches.Load() > 0 {
				close(stop)
				wg.Wait()
				log.Fatalf("swap experiment stalled during %s (%d verified, %d mismatches)",
					what, verified.Load(), mismatches.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitVerified(int64(4*len(specs)), "warmup")
	phase.Store(1)
	waitVerified(verified.Load()+2000, "steady phase")

	// Swap phase: rebuild and hot-swap generations while the load runs,
	// each only after enough swap-phase traffic verified against the
	// previous generation.  The background build is bounded to two workers
	// — the same knob flixd exposes as -build-parallelism — so the rebuild
	// does not starve the serving path of CPU.
	phase.Store(2)
	t0 := time.Now()
	for m := 0; m < swaps; m++ {
		next, err := flix.BuildWithOptions(coll, cycle[m%len(cycle)], flix.BuildOptions{Parallelism: 2})
		if err != nil {
			log.Fatal(err)
		}
		gen := s.Install(next, fmt.Sprintf("swap experiment %d/%d", m+1, swaps))
		fmt.Printf("  swap %d/%d: generation %d (%s) after %s\n",
			m+1, swaps, gen, next.Config().Kind, time.Since(t0).Round(time.Millisecond))
		waitVerified(verified.Load()+400, fmt.Sprintf("swap %d", m+1))
	}
	close(stop)
	wg.Wait()
	if n := mismatches.Load(); n > 0 {
		log.Fatalf("%d responses did not match the oracle", n)
	}

	steady := hists[1].Snapshot()
	swapPh := hists[2].Snapshot()
	r := swapResult{
		Experiment:      "swap",
		Docs:            coll.NumDocs(),
		Elements:        coll.NumNodes(),
		Workers:         workers,
		Swaps:           swaps,
		Verified:        verified.Load(),
		Shed:            shed.Load(),
		FinalGeneration: s.Generation(),
		Steady:          phaseJSON(steady),
		SwapPhase:       phaseJSON(swapPh),
	}
	if p99 := steady.Quantile(0.99); p99 > 0 {
		r.P99Ratio = float64(swapPh.Quantile(0.99)) / float64(p99)
	}
	r.WithinBound = r.P99Ratio <= 2.0
	fmt.Printf("steady p99 %s over %d requests; swap-phase p99 %s over %d requests (%.2fx, %d generations, %d verified)\n\n",
		steady.Quantile(0.99).Round(time.Microsecond), steady.Count,
		swapPh.Quantile(0.99).Round(time.Microsecond), swapPh.Count,
		r.P99Ratio, r.FinalGeneration, r.Verified)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// buildSwapSpecs assembles the oracle-checked workload: bounded-k queries
// are not set-comparable, so every spec runs unbounded over its tag and is
// checked for exact set membership and distance lower bounds.
func buildSwapSpecs(coll *xmlgraph.Collection, hub xmlgraph.NodeID, base string) []swapSpec {
	starts := []xmlgraph.NodeID{hub}
	for d := 0; d < coll.NumDocs() && len(starts) < 12; d += 1 + coll.NumDocs()/11 {
		starts = append(starts, coll.Doc(xmlgraph.DocID(d)).Root)
	}
	tags := coll.Tags()
	if len(tags) > 6 {
		tags = tags[:6]
	}
	var specs []swapSpec
	for _, start := range starts {
		for _, tag := range tags {
			want := bench.OracleDistances(coll, start, tag)
			// Unbounded scans with thousands of results measure JSON
			// encoding, not swap behavior; keep the set-complete queries
			// that a generation switch actually has to re-evaluate.
			if len(want) == 0 || len(want) > 400 {
				continue
			}
			specs = append(specs, swapSpec{
				url:  fmt.Sprintf("%s/v1/descendants?start=%d&tag=%s&k=1000000", base, start, tag),
				want: want,
			})
		}
	}
	if len(specs) == 0 {
		log.Fatal("no non-empty oracle specs; collection too small")
	}
	return specs
}

func verifySwapResponse(spec swapSpec, results []struct {
	Node xmlgraph.NodeID `json:"node"`
	Dist int32           `json:"dist"`
}) bool {
	if len(results) != len(spec.want) {
		return false
	}
	for _, r := range results {
		td, ok := spec.want[r.Node]
		if !ok || r.Dist < td {
			return false
		}
	}
	return true
}

func phaseJSON(sn obs.HistSnapshot) phaseLatency {
	return phaseLatency{
		Requests: sn.Count,
		Mean:     sn.Mean().Round(time.Microsecond).String(),
		P50:      sn.Quantile(0.50).Round(time.Microsecond).String(),
		P95:      sn.Quantile(0.95).Round(time.Microsecond).String(),
		P99:      sn.Quantile(0.99).Round(time.Microsecond).String(),
		P99Nanos: sn.Quantile(0.99).Nanoseconds(),
	}
}
