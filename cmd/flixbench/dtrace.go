package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dblp"
	"repro/internal/flix"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/xmlgraph"
)

// dtraceRow is one shard count's record in BENCH_dtrace.json: the same
// oracle-checked query mix replayed untraced and with ?trace=1, so the cost
// of distributed tracing on the router path is measured directly.
type dtraceRow struct {
	Shards            int     `json:"shards"`
	Queries           int     `json:"queries"`
	UntracedP50Micros int64   `json:"untracedP50Micros"`
	UntracedP99Micros int64   `json:"untracedP99Micros"`
	TracedP50Micros   int64   `json:"tracedP50Micros"`
	TracedP99Micros   int64   `json:"tracedP99Micros"`
	OverheadPct       float64 `json:"overheadPct"` // p50 traced vs untraced
	RoundsPerQuery    float64 `json:"roundsPerQuery"`
	SpansPerQuery     float64 `json:"spansPerQuery"` // dispatch spans (fragments)
	Verified          bool    `json:"oracleVerified"`
	Reconciled        bool    `json:"metricsReconciled"`
}

type dtraceResult struct {
	Experiment string      `json:"experiment"`
	Config     string      `json:"config"`
	Docs       int         `json:"docs"`
	Elements   int         `json:"elements"`
	Rows       []dtraceRow `json:"rows"`
}

// dtraceExperiment measures distributed tracing end to end on 1, 2 and 4
// in-process shards behind a real-HTTP router.  Every response (traced and
// untraced) is checked against the BFS oracle, every trace's gather, round,
// fanout and hop counts are reconciled exactly against the router's
// /metrics counter deltas, and the reported overhead is the p50 latency
// cost of ?trace=1 over the untraced fast path.
func dtraceExperiment(docs int, seed int64, out string) {
	fmt.Println("=== Dtrace: distributed-tracing overhead and reconciliation ===")
	p := dblp.DefaultParams()
	p.Docs = docs
	p.Seed = seed
	e := bench.NewExperiment(p)
	ix, err := flix.Build(e.Coll, flix.Config{Kind: flix.Hybrid, PartitionSize: 2000})
	if err != nil {
		log.Fatal(err)
	}

	var queries []shardQuery
	add := func(start xmlgraph.NodeID, tag string) {
		queries = append(queries, shardQuery{start: start, tag: tag, want: e.Coll.DescendantsByTag(start, tag)})
	}
	add(e.Start, "article")
	add(e.Start, "title")
	for d := 0; d < e.Coll.NumDocs() && len(queries) < 18; d += e.Coll.NumDocs()/16 + 1 {
		add(e.Coll.Doc(xmlgraph.DocID(d)).Root, "author")
	}

	res := dtraceResult{
		Experiment: "dtrace",
		Config:     ix.Config().Kind.String(),
		Docs:       e.Coll.NumDocs(),
		Elements:   e.Coll.NumNodes(),
	}
	fmt.Printf("%8s %10s %12s %12s %12s %12s %10s %12s\n",
		"shards", "queries", "plain-p50", "plain-p99", "traced-p50", "traced-p99", "overhead", "spans/query")
	for _, n := range []int{1, 2, 4} {
		row := runDtraceCount(e.Coll, ix, n, queries)
		res.Rows = append(res.Rows, row)
		fmt.Printf("%8d %10d %12s %12s %12s %12s %9.1f%% %12.1f\n", row.Shards, row.Queries,
			time.Duration(row.UntracedP50Micros)*time.Microsecond, time.Duration(row.UntracedP99Micros)*time.Microsecond,
			time.Duration(row.TracedP50Micros)*time.Microsecond, time.Duration(row.TracedP99Micros)*time.Microsecond,
			row.OverheadPct, row.SpansPerQuery)
	}
	fmt.Println()

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// dtraceCounters are the /metrics counters a trace must reconcile with.
type dtraceCounters struct {
	gathers, rounds, fanouts, hops, redispatched, deduped, traced int64
}

// scrapeCounters pulls the reconciliation counters out of the router's
// Prometheus exposition.
func scrapeCounters(url string) dtraceCounters {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	vals := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, raw, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(raw, 64); err == nil {
			vals[name] = int64(v)
		}
	}
	return dtraceCounters{
		gathers:      vals["flix_router_gathers_total"],
		rounds:       vals["flix_router_rounds_total"],
		fanouts:      vals["flix_router_fanouts_total"],
		hops:         vals["flix_router_hops_total"],
		redispatched: vals["flix_router_hops_redispatched_total"],
		deduped:      vals["flix_router_hops_deduped_total"],
		traced:       vals["flix_router_traced_queries_total"],
	}
}

// runDtraceCount stands up n shards plus a router, replays the mix untraced
// then traced, and reconciles the traced pass against /metrics.
func runDtraceCount(coll *xmlgraph.Collection, ix *flix.Index, n int, queries []shardQuery) dtraceRow {
	shards := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := server.New(ix, server.Config{
			Shard:     &server.ShardConfig{ID: i, Count: n},
			CacheSize: -1,
		})
		shards[i] = httptest.NewServer(s.Handler())
		urls[i] = shards[i].URL
	}
	defer func() {
		for _, ts := range shards {
			ts.Close()
		}
	}()
	rt, err := shard.NewRouter(coll, shard.RouterConfig{
		Shards:        urls,
		ProbeInterval: 20 * time.Millisecond,
		MaxLimit:      1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := rt.WaitReady(wctx); err != nil {
		log.Fatalf("router with %d shards never became ready: %v", n, err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	type wire struct {
		Results []struct {
			Node xmlgraph.NodeID `json:"node"`
			Dist int32           `json:"dist"`
		} `json:"results"`
		Partial bool              `json:"partial"`
		Rounds  int               `json:"rounds"`
		Trace   *obs.ClusterTrace `json:"trace"`
	}
	runPass := func(traced, record bool) (durs []time.Duration, traces []*obs.ClusterTrace) {
		for _, q := range queries {
			url := fmt.Sprintf("%s/v1/descendants?start=%d&tag=%s&k=%d&timeout=30s",
				router.URL, q.start, q.tag, len(q.want)+1)
			if traced {
				url += "&trace=1"
			}
			t0 := time.Now()
			resp, err := http.Get(url)
			if err != nil {
				log.Fatal(err)
			}
			var w wire
			if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			d := time.Since(t0)
			if resp.StatusCode != http.StatusOK || w.Partial {
				log.Fatalf("dtrace %d shards: status %d partial %v", n, resp.StatusCode, w.Partial)
			}
			if len(w.Results) != len(q.want) {
				log.Fatalf("dtrace %d shards: start=%d tag=%s: %d results, oracle %d",
					n, q.start, q.tag, len(w.Results), len(q.want))
			}
			for i, r := range w.Results {
				if r.Node != q.want[i].Node || r.Dist != q.want[i].Dist {
					log.Fatalf("dtrace %d shards: start=%d tag=%s result %d: (%d,%d) != oracle (%d,%d)",
						n, q.start, q.tag, i, r.Node, r.Dist, q.want[i].Node, q.want[i].Dist)
				}
			}
			if traced != (w.Trace != nil) {
				log.Fatalf("dtrace %d shards: trace=%v request returned trace=%v", n, traced, w.Trace != nil)
			}
			if w.Trace != nil && w.Trace.Rounds != w.Rounds {
				log.Fatalf("dtrace %d shards: trace rounds %d != response rounds %d", n, w.Trace.Rounds, w.Rounds)
			}
			if record {
				durs = append(durs, d)
				traces = append(traces, w.Trace)
			}
		}
		return durs, traces
	}

	runPass(false, false) // warm connections and page cache
	plain, _ := runPass(false, true)

	before := scrapeCounters(router.URL)
	traced, traces := runPass(true, true)
	after := scrapeCounters(router.URL)

	// Reconcile the summed per-trace counts against the counter deltas —
	// the acceptance contract of the tracing tier.
	var sum dtraceCounters
	var spans int64
	for _, ct := range traces {
		sum.gathers += int64(ct.Gathers)
		sum.rounds += int64(ct.Rounds)
		sum.fanouts += int64(ct.Fanouts)
		sum.hops += ct.HopsSeen
		sum.redispatched += ct.HopsRedispatched
		sum.deduped += ct.HopsDeduped
		sum.traced++
		spans += int64(ct.Fanouts)
	}
	delta := dtraceCounters{
		gathers:      after.gathers - before.gathers,
		rounds:       after.rounds - before.rounds,
		fanouts:      after.fanouts - before.fanouts,
		hops:         after.hops - before.hops,
		redispatched: after.redispatched - before.redispatched,
		deduped:      after.deduped - before.deduped,
		traced:       after.traced - before.traced,
	}
	if delta != sum {
		log.Fatalf("dtrace %d shards: /metrics deltas %+v != summed traces %+v", n, delta, sum)
	}

	pct := func(durs []time.Duration, p float64) time.Duration {
		sorted := append([]time.Duration(nil), durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[min(int(p*float64(len(sorted))), len(sorted)-1)]
	}
	var rounds int64
	for _, ct := range traces {
		rounds += int64(ct.Rounds)
	}
	up50, tp50 := pct(plain, 0.50), pct(traced, 0.50)
	return dtraceRow{
		Shards:            n,
		Queries:           len(queries),
		UntracedP50Micros: up50.Microseconds(),
		UntracedP99Micros: pct(plain, 0.99).Microseconds(),
		TracedP50Micros:   tp50.Microseconds(),
		TracedP99Micros:   pct(traced, 0.99).Microseconds(),
		OverheadPct:       100 * (float64(tp50)/float64(up50) - 1),
		RoundsPerQuery:    float64(rounds) / float64(len(traces)),
		SpansPerQuery:     float64(spans) / float64(len(traces)),
		Verified:          true,
		Reconciled:        true,
	}
}
