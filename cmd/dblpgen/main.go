// Command dblpgen writes the synthetic DBLP-like collection used by the
// experiments to disk as one XML file per publication, with citation links
// encoded as href attributes.  The output directory can be loaded back with
// flixquery -dir or any xmlparse.Loader.
//
// Usage:
//
//	dblpgen -out /tmp/dblp [-docs 6210] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dblp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dblpgen: ")
	out := flag.String("out", "", "output directory (required; created if missing)")
	docs := flag.Int("docs", 6210, "number of publication documents")
	seed := flag.Int64("seed", 42, "generator seed")
	cites := flag.Float64("cites", 4.085, "mean citation links per document")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	p := dblp.DefaultParams()
	p.Docs = *docs
	p.Seed = *seed
	p.MeanCites = *cites
	c := dblp.Generate(p)
	if err := c.WriteXML(*out); err != nil {
		log.Fatal(err)
	}
	links := 0
	for i := range c.Pubs {
		links += len(c.Pubs[i].Cites)
	}
	fmt.Printf("wrote %d documents (%d citation links) to %s\n", len(c.Pubs), links, *out)
	fmt.Printf("query-start document: %s (%s)\n", c.DocName(c.HubIndex), c.Pubs[c.HubIndex].Key)
}
