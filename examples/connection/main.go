// Command connection demonstrates connection tests (§5.2): deciding
// whether two elements are connected, computing the length of the
// discovered path, bounding the search with a relevance-derived distance
// threshold, and comparing the forward search against the bidirectional
// optimization.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	flix "repro"
	"repro/internal/dblp"
)

func main() {
	docs := flag.Int("docs", 1500, "number of publication documents")
	flag.Parse()

	corpus := dblp.Generate(dblp.Scaled(*docs))
	coll := corpus.BuildGraph()
	ix, err := flix.Build(coll, flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collection:", flix.ComputeStats(coll))
	fmt.Println("index:", ix.Describe())

	start := corpus.Hub(coll)
	fmt.Printf("\nstart element: root of %s\n", corpus.Pubs[corpus.HubIndex].Key)

	// Probe a spread of target documents: cited ones are connected
	// through short citation chains, most others are not connected.
	targets := []int{
		corpus.Pubs[corpus.HubIndex].Cites[0], // directly cited
		0,                                     // the very first paper (often reachable transitively)
		*docs / 2,
		*docs - 2,
	}
	for _, t := range targets {
		d, _ := coll.DocByName(corpus.DocName(t))
		target := coll.Doc(d).Root
		if dist, ok := ix.Connected(start, target, 0); ok {
			fmt.Printf("  %-28s connected, path length %d\n", corpus.Pubs[t].Key, dist)
		} else {
			fmt.Printf("  %-28s not connected\n", corpus.Pubs[t].Key)
		}
	}

	// A client that derives relevance from path length can bound the
	// search: beyond the threshold the result would be negligible anyway.
	fmt.Println("\nwith a distance threshold of 3:")
	for _, t := range targets {
		d, _ := coll.DocByName(corpus.DocName(t))
		target := coll.Doc(d).Root
		if dist, ok := ix.Connected(start, target, 3); ok {
			fmt.Printf("  %-28s within threshold (length %d)\n", corpus.Pubs[t].Key, dist)
		} else {
			fmt.Printf("  %-28s beyond threshold or unreachable\n", corpus.Pubs[t].Key)
		}
	}

	// Forward vs bidirectional search (§5.2: "one could start two
	// evaluations instead of one").
	fmt.Println("\nforward vs bidirectional timing over all probes:")
	var fwd, bidi time.Duration
	for trial := 0; trial < 200; trial++ {
		t := targets[trial%len(targets)]
		d, _ := coll.DocByName(corpus.DocName(t))
		target := coll.Doc(d).Root
		t0 := time.Now()
		ix.Connected(start, target, 0)
		fwd += time.Since(t0)
		t0 = time.Now()
		ix.ConnectedBidirectional(start, target, 0)
		bidi += time.Since(t0)
	}
	fmt.Printf("  forward:       %s\n", fwd.Round(time.Microsecond))
	fmt.Printf("  bidirectional: %s\n", bidi.Round(time.Microsecond))
}
