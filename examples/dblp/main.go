// Command dblp demonstrates FliX on a DBLP-scale bibliographic collection:
// it generates the synthetic corpus the experiments use (one XML document
// per publication, citation links between documents), builds several
// framework configurations, compares their footprints, and streams a top-k
// "all article descendants of a highly-cited paper" query — the workload of
// the paper's Figure 5.
//
// Usage:
//
//	go run ./examples/dblp [-docs 2000] [-k 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	flix "repro"
	"repro/internal/bench"
	"repro/internal/dblp"
)

func main() {
	docs := flag.Int("docs", 2000, "number of publication documents")
	k := flag.Int("k", 20, "results to stream")
	flag.Parse()

	corpus := dblp.Generate(dblp.Scaled(*docs))
	coll := corpus.BuildGraph()
	fmt.Println("collection:", flix.ComputeStats(coll))

	configs := []struct {
		name string
		cfg  flix.Config
	}{
		{"naive", flix.Config{Kind: flix.Naive}},
		{"maximal-ppo", flix.Config{Kind: flix.MaximalPPO}},
		{"hopi-5000", flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 5000}},
		{"hybrid", flix.DefaultConfig()},
	}

	type builtIndex struct {
		name string
		ix   *flix.Index
	}
	var built []builtIndex
	fmt.Println("\nconfigurations:")
	for _, c := range configs {
		t0 := time.Now()
		ix, err := flix.Build(coll, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		sz, err := ix.SizeBytes()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s build=%-10s size=%-10s %s\n",
			c.name, time.Since(t0).Round(time.Millisecond), bench.FormatBytes(sz), ix.Describe())
		built = append(built, builtIndex{c.name, ix})
	}

	start := corpus.Hub(coll)
	fmt.Printf("\nquery start: %s (cites %d papers)\n",
		corpus.Pubs[corpus.HubIndex].Key, len(corpus.Pubs[corpus.HubIndex].Cites))

	// Stream the top-k article descendants from the hybrid index — the
	// client reads at its own pace and closes early (§3.1).
	ix := built[len(built)-1].ix
	s := ix.Stream(start, "article", flix.Options{MaxResults: *k})
	fmt.Printf("\ntop-%d article descendants (hybrid):\n", *k)
	rank := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		rank++
		doc := coll.Doc(coll.DocOf(r.Node))
		fmt.Printf("  %2d. dist=%-3d %s\n", rank, r.Dist, doc.Name)
	}
	s.Close()

	// Compare time-to-k across the configurations.
	fmt.Printf("\ntime to first %d results:\n", *k)
	for _, b := range built {
		t0 := time.Now()
		n := 0
		b.ix.Descendants(start, "article", flix.Options{MaxResults: *k}, func(flix.Result) bool {
			n++
			return true
		})
		fmt.Printf("  %-12s %10s (%d results)\n", b.name, time.Since(t0).Round(time.Microsecond), n)
	}
}
