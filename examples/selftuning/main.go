// Command selftuning demonstrates the framework's §7 future-work features
// implemented by this reproduction: query-load statistics, the self-tuning
// advisor that recommends a rebuild when queries cross too many meta
// documents, and the frequent-query result cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	flix "repro"
	"repro/internal/dblp"
)

func main() {
	docs := flag.Int("docs", 1500, "number of publication documents")
	flag.Parse()

	corpus := dblp.Generate(dblp.Scaled(*docs))
	coll := corpus.BuildGraph()
	start := corpus.Hub(coll)

	// Deliberately mis-configured: tiny partitions force every query to
	// hop across many meta documents.
	ix, err := flix.Build(coll, flix.Config{Kind: flix.UnconnectedHOPI, PartitionSize: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial:", ix.Describe())

	runLoad := func(ix *flix.Index) time.Duration {
		t0 := time.Now()
		for i := 0; i < 50; i++ {
			ix.Descendants(start, "article", flix.Options{MaxResults: 100},
				func(flix.Result) bool { return true })
		}
		return time.Since(t0)
	}
	elapsed := runLoad(ix)
	fmt.Printf("load: 50 queries in %s\n", elapsed.Round(time.Microsecond))
	fmt.Println("stats:", ix.Stats().Snapshot())

	// The advisor notices the link-heavy load and recommends coarser
	// partitions; keep rebuilding until it is satisfied.
	for round := 1; ; round++ {
		advice := ix.Advise()
		fmt.Printf("advice (round %d): %s\n", round, advice.Reason)
		if !advice.Rebuild {
			break
		}
		t0 := time.Now()
		ix, err = flix.Build(coll, advice.Config)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rebuilt in %s: %s\n", time.Since(t0).Round(time.Millisecond), ix.Describe())
		elapsed = runLoad(ix)
		fmt.Printf("load: 50 queries in %s\n", elapsed.Round(time.Microsecond))
	}

	// The result cache pays off for repeated (sub-)queries.
	cache := ix.NewQueryCache(64)
	consume := func(r flix.Result) bool { return true }
	t0 := time.Now()
	cache.Descendants(start, "article", flix.Options{}, consume)
	cold := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < 100; i++ {
		cache.Descendants(start, "article", flix.Options{}, consume)
	}
	warm := time.Since(t0) / 100
	fmt.Printf("\nquery cache: cold %s, warm %s per query (hit rate %.0f%%)\n",
		cold.Round(time.Microsecond), warm.Round(time.Microsecond), 100*cache.HitRate())
}
