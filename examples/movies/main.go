// Command movies reproduces the motivating scenario of the paper's
// introduction (§1.1): heterogeneous movie data from sources with different
// schemas, searched with a query that carries semantic vagueness (the ~
// operator expanding tags through an ontology) and structural vagueness
// (child steps relaxed to descendants-or-self).
//
// The strict query /movie/actor finds almost nothing; the relaxed query
// //~movie//actor finds the actors of every source, ranked by relevance.
package main

import (
	"fmt"
	"log"
	"strings"

	flix "repro"
)

// Three sources describing movies with incompatible schemas, linked to each
// other: the paper's "schemas widely vary across data sources" setting.
var sources = map[string]string{
	"matrix.xml": `<movie id="m3">
	  <title>Matrix: Revolutions</title>
	  <cast>
	    <actor><name>Keanu Reeves</name></actor>
	    <actor><name>Carrie-Anne Moss</name></actor>
	  </cast>
	  <follows href="matrix2.xml"/>
	</movie>`,
	"matrix2.xml": `<science-fiction>
	  <title>Matrix 3</title>
	  <credits>
	    <people>
	      <actor>Hugo Weaving</actor>
	    </people>
	  </credits>
	</science-fiction>`,
	"speed.xml": `<film>
	  <title>Speed</title>
	  <performer>Keanu Reeves</performer>
	</film>`,
}

// movieOntology mirrors the paper's example: "an ontology for movies could
// state that science-fiction is a special case of a movie".
const movieOntology = `
movie science-fiction 0.8
movie film 0.9
actor performer 0.85
`

func main() {
	loader := flix.NewLoader()
	for name, text := range sources {
		if err := loader.LoadDocument(name, strings.NewReader(text)); err != nil {
			log.Fatal(err)
		}
	}
	coll, err := loader.Finish()
	if err != nil {
		log.Fatal(err)
	}
	ix, err := flix.Build(coll, flix.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	onto, err := flix.ParseOntology(movieOntology)
	if err != nil {
		log.Fatal(err)
	}
	eval := &flix.Evaluator{Index: ix, Ontology: onto}

	run := func(expr string) {
		q, err := flix.ParseQuery(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", q)
		matches := eval.Evaluate(q)
		if len(matches) == 0 {
			fmt.Println("  (no results)")
			return
		}
		for _, m := range matches {
			n := coll.Node(m.Node)
			text := n.Text
			if text == "" {
				// actor elements of matrix.xml keep the name in a child.
				coll.EachChild(m.Node, func(c flix.NodeID) {
					if text == "" {
						text = coll.Node(c).Text
					}
				})
			}
			fmt.Printf("  %.3f  <%s> %-22q (%s, path length %d)\n",
				m.Score, coll.Tag(m.Node), text,
				coll.Doc(coll.DocOf(m.Node)).Name, m.PathLen)
		}
	}

	// The strict query misses the other schemas entirely.
	run("/movie/actor")

	// Structural vagueness alone: relax / to //.
	q, err := flix.ParseQuery("/movie/actor")
	if err != nil {
		log.Fatal(err)
	}
	relaxed := q.Relax()
	fmt.Printf("\nrelaxing %s to %s", q, relaxed)
	run(relaxed.String())

	// Full vagueness: the paper's //~movie//~actor, plus a content filter.
	run("//~movie//~actor")
	run(`//~movie[text~""]//title[text~"matrix"]`)
}
