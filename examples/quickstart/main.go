// Command quickstart is the smallest end-to-end FliX program: it builds a
// tiny collection of two linked XML documents through the public API,
// indexes it with the default Hybrid configuration, and runs one
// descendants query plus one connection test.
package main

import (
	"fmt"
	"log"

	flix "repro"
)

func main() {
	// A bibliography document with two articles; the second one links to
	// a paper in another document.
	coll := flix.NewCollection()

	bib := coll.NewDocument("bib.xml")
	bibRoot := bib.Enter("bib", "")
	art1 := bib.Enter("article", "")
	bib.AddLeaf("author", "C. Mohan")
	bib.AddLeaf("title", "ARIES")
	bib.Leave()
	art2 := bib.Enter("article", "")
	bib.AddLeaf("title", "Follow-up")
	cite := bib.AddLeaf("cite", "")
	bib.Leave()
	bib.Leave()
	bib.Close()

	ext := coll.NewDocument("hopi.xml")
	paper := ext.Enter("paper", "")
	ext.AddLeaf("title", "HOPI: An Efficient Connection Index")
	ext.Leave()
	ext.Close()

	// An inter-document link (like an XLink href) and an intra-document
	// citation (like an idref).
	coll.AddLink(cite, paper, flix.EdgeInterLink)
	coll.AddLink(art2, art1, flix.EdgeIntraLink)
	coll.Freeze()

	fmt.Println("collection:", flix.ComputeStats(coll))

	ix, err := flix.Build(coll, flix.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("index:", ix.Describe())

	// bib//title finds every title reachable from the bib element —
	// including the one in the linked document — in ascending distance.
	fmt.Println("\nbib//title:")
	ix.Descendants(bibRoot, "title", flix.Options{}, func(r flix.Result) bool {
		fmt.Printf("  %-40q dist=%d\n", coll.Node(r.Node).Text, r.Dist)
		return true
	})

	// Connection test: is the external paper reachable from the bib?
	if d, ok := ix.Connected(bibRoot, paper, 0); ok {
		fmt.Printf("\nbib reaches the HOPI paper via a path of length %d\n", d)
	}
	if _, ok := ix.Connected(paper, bibRoot, 0); !ok {
		fmt.Println("the HOPI paper does not reach back (links are directed)")
	}
}
